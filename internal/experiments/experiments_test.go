package experiments

import (
	"strings"
	"testing"
)

// tinyParams runs experiments at reduced input scale so the whole suite
// stays test-friendly while preserving every qualitative shape.
func tinyParams() Params { return Params{Seed: 1, Scale: 0.1} }

// TestRegistryComplete checks every paper artifact has a registered
// runner.
func TestRegistryComplete(t *testing.T) {
	want := []string{
		// Paper artifacts.
		"fig1", "table1", "table2", "fig2", "table4", "fig4", "fig5",
		"fig6", "fig7", "fig8a", "fig8b", "fig9", "fig10", "fig11a",
		"fig11b", "sec583",
		// Extensions (DESIGN.md §3).
		"ablation-model", "ablation-netsim", "multicloud",
		"rebalance", "rebalance-trace",
		"multijob", "multijob-trace",
		"failover", "chaos", "fleet",
		"serve", "pareto", "degrade",
	}
	for _, id := range want {
		if _, ok := Registry[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d entries, want %d", len(IDs()), len(want))
	}
}

// TestFig1Anchors checks the topology anchors of the motivation.
func TestFig1Anchors(t *testing.T) {
	r, err := Fig1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.BW[0][1] < 1400 || r.BW[0][1] > 2100 {
		t.Errorf("US East->US West = %.0f, want ~1700", r.BW[0][1])
	}
	if r.BW[0][3] < 80 || r.BW[0][3] > 170 {
		t.Errorf("US East->AP SE = %.0f, want ~121", r.BW[0][3])
	}
	if !strings.Contains(r.String(), "anchors") {
		t.Error("rendering lacks the anchor line")
	}
}

// TestTable1Shape checks significant static-vs-runtime gaps exist.
func TestTable1Shape(t *testing.T) {
	r, err := Table1(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Pairs != 28 {
		t.Errorf("%d pairs, want 28", r.Pairs)
	}
	if r.Significant < 4 {
		t.Errorf("only %d significant gaps (paper: 18)", r.Significant)
	}
	if len(r.Buckets) != 3 {
		t.Errorf("%d buckets", len(r.Buckets))
	}
}

// TestTable2Reproduction checks the monitoring-cost table against the
// paper's figures.
func TestTable2Reproduction(t *testing.T) {
	r, err := Table2(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Savings < 0.90 {
		t.Errorf("savings %.2f, want >= 0.90 (paper ~0.96)", r.Savings)
	}
	wantMon := map[int]float64{4: 703, 6: 1055, 8: 1406}
	for _, row := range r.Rows {
		if w := wantMon[row.N]; row.RuntimeMonitoring < w*0.95 || row.RuntimeMonitoring > w*1.05 {
			t.Errorf("monitoring N=%d: $%.0f, want ~$%.0f", row.N, row.RuntimeMonitoring, w)
		}
		if row.ModelTraining+row.Predictions >= row.RuntimeMonitoring {
			t.Errorf("prediction not cheaper at N=%d", row.N)
		}
	}
}

// TestFig2HeterogeneousWins checks the §2.2 motivation experiment: the
// heterogeneous assignment beats uniform on min BW and bottleneck time,
// trading max BW down.
func TestFig2HeterogeneousWins(t *testing.T) {
	r, err := Fig2(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinHet < 1.6*r.MinUniform {
		t.Errorf("het min %.0f < 1.6x uniform min %.0f (paper 2.1x)", r.MinHet, r.MinUniform)
	}
	if r.Het.MaxOffDiagonal() >= r.Single.MaxOffDiagonal() {
		t.Error("heterogeneous did not trade the strong link down")
	}
	if r.LatHet >= r.LatSingle || r.LatHet >= r.LatUniform {
		t.Errorf("het bottleneck %.1fs not best (single %.1f, uniform %.1f)", r.LatHet, r.LatSingle, r.LatUniform)
	}
	// The budget is preserved (8 conns x 6 links, small rounding slack).
	if got := r.HetConns.TotalOffDiagonal(); got < 40 || got > 8*6 {
		t.Errorf("het budget %d, want <= 48", got)
	}
}

// TestTable4RuntimeBeliefsHelp checks the headline of §5.2: runtime
// (simultaneous or predicted) beliefs never hurt much and help the
// heavy query clearly.
func TestTable4RuntimeBeliefsHelp(t *testing.T) {
	r, err := Table4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	cell := r.Cells["tetrium"][beliefPredicted.String()][78]
	if cell.PerfPct < 1 {
		t.Errorf("tetrium q78 predicted gain %.1f%%, want clearly positive (paper 14%%)", cell.PerfPct)
	}
	if r.MonitoringPredictedUSD >= r.MonitoringSimultaneousUSD {
		t.Error("snapshot monitoring should be much cheaper than 20s simultaneous")
	}
}

// TestFig5Ordering checks §5.3.1: WANify-TC/Dynamic beat the vanilla
// single-connection baseline on latency and min BW, and beat uniform
// parallelism on min BW.
func TestFig5Ordering(t *testing.T) {
	r, err := Fig5(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	rows := map[pdtVariant]Fig5Row{}
	for _, row := range r.Rows {
		rows[row.Variant] = row
	}
	if rows[variantThrottle].JCTMin >= rows[variantVanilla].JCTMin {
		t.Errorf("WANify-TC %.2fm not faster than vanilla %.2fm", rows[variantThrottle].JCTMin, rows[variantVanilla].JCTMin)
	}
	if rows[variantThrottle].MinBWMbps <= rows[variantVanilla].MinBWMbps {
		t.Error("WANify-TC min BW not above vanilla")
	}
	if rows[variantDynamic].MinBWMbps <= rows[variantUniform].MinBWMbps {
		t.Error("heterogeneous AIMD min BW not above uniform parallelism")
	}
}

// TestFig6GainsGrowWithShuffle checks §5.3.2's trend.
func TestFig6GainsGrowWithShuffle(t *testing.T) {
	r, err := Fig6(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("%d rows", len(r.Rows))
	}
	last := r.Rows[len(r.Rows)-1]
	if last.WANifyJCT >= last.VanillaJCT {
		t.Errorf("no gain at the largest shuffle: %.1f vs %.1f", last.WANifyJCT, last.VanillaJCT)
	}
	if last.WANifyMinBW <= last.VanillaMinBW {
		t.Error("min BW not improved at the largest shuffle")
	}
}

// TestFig7WANifyHelps checks §5.4's headline on the heavy query.
func TestFig7WANifyHelps(t *testing.T) {
	r, err := Fig7(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Query != 78 {
			continue
		}
		gain := pct(row.VanillaJCT, row.WANifyJCT)
		if gain < 5 {
			t.Errorf("%s q78 gain %.1f%%, want clearly positive (paper up to 24%%)", row.System, gain)
		}
	}
}

// TestFig8aFullBeatsVanilla checks the ablation's envelope: every
// WANify variant beats vanilla on the heavy query.
func TestFig8aFullBeatsVanilla(t *testing.T) {
	r, err := Fig8a(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.System != "tetrium" || row.Variant == "vanilla" {
			continue
		}
		if row.GainPct <= 0 {
			t.Errorf("tetrium %s gain %.1f%%, want positive", row.Variant, row.GainPct)
		}
	}
}

// TestFig9TracksAndCounts checks the dynamics experiment produces
// epochs and flags significant deltas under injected error.
func TestFig9TracksAndCounts(t *testing.T) {
	r, err := Fig9(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Epochs) < 3 {
		t.Fatalf("only %d epochs", len(r.Epochs))
	}
	if r.SigDeltasWithErr == 0 {
		t.Error("20% injected error produced no significant deltas (paper: 6)")
	}
}

// TestFig11aPredictionBeatsStatic checks the accuracy comparison at the
// full cluster size.
func TestFig11aPredictionBeatsStatic(t *testing.T) {
	r, err := Fig11a(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	last := r.Rows[len(r.Rows)-1] // N=8
	if last.PredictedSig >= last.StaticSig {
		t.Errorf("N=8: predicted %d significant errors vs static %d — prediction should win", last.PredictedSig, last.StaticSig)
	}
}

// TestFig11bAssociationBeatsStatic checks the multi-VM accuracy path.
func TestFig11bAssociationBeatsStatic(t *testing.T) {
	r, err := Fig11b(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	wins := 0
	for _, row := range r.Rows {
		if row.PredictedSig < row.StaticSig {
			wins++
		}
	}
	if wins < len(r.Rows)-1 {
		t.Errorf("prediction won only %d/%d configurations", wins, len(r.Rows))
	}
}

// TestFig4Ordering checks the §5.6 variant ranking on cost: quantized
// variants beat NoQ, and WANify-enabled quantization is the cheapest.
func TestFig4Ordering(t *testing.T) {
	r, err := Fig4(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig4Row{}
	for _, row := range r.Rows {
		byName[row.Variant] = row
	}
	if byName["SAGQ"].TrainMin >= byName["NoQ"].TrainMin {
		t.Error("SAGQ not faster than NoQ")
	}
	if byName["WQ"].CostUSD > byName["SAGQ"].CostUSD {
		t.Error("WQ not cheaper than SAGQ")
	}
	if byName["WQ"].MinBWMbps <= byName["SAGQ"].MinBWMbps {
		t.Error("WQ min BW not above SAGQ")
	}
}

// TestResultsRender checks every runner produces non-empty printable
// output (the cmd/wanify-bench contract).
func TestResultsRender(t *testing.T) {
	for _, id := range []string{"table2", "fig2"} {
		res, err := Registry[id](tinyParams())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(res.String()) < 50 {
			t.Errorf("%s rendering suspiciously short", id)
		}
	}
}

// TestAblationModelRFCompetitive checks the model-choice extension: the
// Random Forest achieves the best (or tied-best) RMSE on held-out
// cluster sizes.
func TestAblationModelRFCompetitive(t *testing.T) {
	r, err := AblationModel(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	var rf, bestOther AblationModelRow
	bestOther.RMSE = 1e18
	for _, row := range r.Rows {
		if row.Model == "random-forest" {
			rf = row
		} else if row.RMSE < bestOther.RMSE {
			bestOther = row
		}
	}
	if rf.Accuracy < 0.9 {
		t.Errorf("RF held-out accuracy %.3f", rf.Accuracy)
	}
	if rf.RMSE > bestOther.RMSE*1.1 {
		t.Errorf("RF RMSE %.1f clearly worse than best baseline %.1f (%s)", rf.RMSE, bestOther.RMSE, bestOther.Model)
	}
}

// TestAblationNetsimShape checks the knob sweep reproduces the design
// argument: at the shipped RTT-bias exponent (1.5), uniform parallelism
// gives the weak link little-to-nothing while the heterogeneous budget
// roughly doubles it; at a weak exponent (0.5) uniform parallelism
// would look useful, contradicting the paper.
func TestAblationNetsimShape(t *testing.T) {
	r, err := AblationNetsim(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	byKnob := map[string]map[float64]AblationNetsimRow{}
	for _, row := range r.Rows {
		if byKnob[row.Knob] == nil {
			byKnob[row.Knob] = map[float64]AblationNetsimRow{}
		}
		byKnob[row.Knob][row.Value] = row
	}
	shipped := byKnob["rtt-bias-exp"][1.5]
	if shipped.UniformX > 1.2 {
		t.Errorf("at exp=1.5 uniform-8 min BW ratio %.2f, want ~1 or below", shipped.UniformX)
	}
	if shipped.HetX < 1.6 {
		t.Errorf("at exp=1.5 heterogeneous ratio %.2f, want ~2x", shipped.HetX)
	}
	weak := byKnob["rtt-bias-exp"][0.5]
	if weak.UniformX <= shipped.UniformX {
		t.Error("a weaker RTT bias should make uniform parallelism look better")
	}
}

// TestMultiCloudPredictionWins checks the §5.8.3 extension.
func TestMultiCloudPredictionWins(t *testing.T) {
	r, err := MultiCloud(tinyParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.PredictedSig >= r.StaticSig {
		t.Errorf("multi-cloud: predicted %d significant errors vs static %d", r.PredictedSig, r.StaticSig)
	}
}

// TestRebalanceImproves locks the runtime-controller acceptance
// property: under both episode scenarios the re-gauged run replans at
// least once and completes sooner than the static one-shot plan, while
// moving the same job bytes.
func TestRebalanceImproves(t *testing.T) {
	for _, id := range []string{"rebalance", "rebalance-trace"} {
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](tinyParams())
			if err != nil {
				t.Fatal(err)
			}
			r := res.(*RebalanceResult)
			if len(r.Rows) != 2 || r.Rows[0].Variant != "static" || r.Rows[1].Variant != "regauge" {
				t.Fatalf("unexpected rows: %+v", r.Rows)
			}
			static, regauge := r.Rows[0], r.Rows[1]
			if regauge.Replans < 1 {
				t.Errorf("controller never replanned during the episode")
			}
			if static.Replans != 0 || static.DriftEpochs != 0 {
				t.Errorf("static variant ran a controller: %+v", static)
			}
			if regauge.JCTSeconds >= static.JCTSeconds {
				t.Errorf("re-gauging did not improve JCT: %.1f vs %.1f",
					regauge.JCTSeconds, static.JCTSeconds)
			}
			if regauge.WANBytes != static.WANBytes {
				t.Errorf("variants moved different job bytes: %.0f vs %.0f",
					regauge.WANBytes, static.WANBytes)
			}
			if r.ImprovementPct <= 0 {
				t.Errorf("improvement %.1f%% not positive", r.ImprovementPct)
			}
		})
	}
}

// TestMultijobInvariants locks the multi-tenant acceptance properties
// on both drivers: every sharing variant moves exactly the same bytes
// per job (contention and partitioning shift time, never volume), the
// expected variants are present, and the fair partition never loses to
// the oversubscribed deployment on the netsim scenario.
func TestMultijobInvariants(t *testing.T) {
	for _, id := range []string{"multijob", "multijob-trace"} {
		t.Run(id, func(t *testing.T) {
			res, err := Registry[id](tinyParams())
			if err != nil {
				t.Fatal(err)
			}
			r := res.(*MultijobResult)
			if len(r.Variants) < 3 {
				t.Fatalf("only %d variants", len(r.Variants))
			}
			base := r.Variants[0] // solo
			if base.Name != "solo" {
				t.Fatalf("first variant %q, want solo", base.Name)
			}
			for _, v := range r.Variants[1:] {
				if len(v.Rows) != len(base.Rows) {
					t.Fatalf("%s has %d jobs, solo has %d", v.Name, len(v.Rows), len(base.Rows))
				}
				for i, row := range v.Rows {
					if row.WANBytes != base.Rows[i].WANBytes {
						t.Errorf("%s job %s moved %.0f bytes, solo moved %.0f (not conserved)",
							v.Name, row.Job, row.WANBytes, base.Rows[i].WANBytes)
					}
					if row.JCTSeconds <= 0 {
						t.Errorf("%s job %s has no JCT", v.Name, row.Job)
					}
				}
				if v.MakespanS <= 0 {
					t.Errorf("%s has no makespan", v.Name)
				}
			}
			if id == "multijob" {
				byName := map[string]MultijobVariant{}
				for _, v := range r.Variants {
					byName[v.Name] = v
				}
				if byName["fair"].MakespanS > byName["whole"].MakespanS {
					t.Errorf("fair partition makespan %.1f worse than oversubscribed %.1f",
						byName["fair"].MakespanS, byName["whole"].MakespanS)
				}
			}
		})
	}
}
