// Package experiments contains one driver per table and figure of the
// paper's evaluation (plus the §2 motivation artifacts). Every driver
// is deterministic for a given seed, returns a structured result whose
// String() prints the same rows/series the paper reports, and is
// exposed through Registry for cmd/wanify-bench and bench_test.go.
//
// See DESIGN.md §3 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured numbers.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

// Params configures an experiment run.
type Params struct {
	// Seed makes the run reproducible.
	Seed uint64
	// Scale multiplies the paper's input sizes (1.0 = 100 GB TPC-DS /
	// TeraSort). Benchmarks run at reduced scale; results report the
	// scale used.
	Scale float64
	// Model is a trained prediction model to reuse across experiments;
	// nil trains one on demand (cached per seed).
	Model *predict.Model
	// Backend selects the WAN substrate (zero value = netsim). Trace
	// backends replay recorded bandwidth timeseries; see ParseBackend.
	Backend Backend
}

func (p Params) withDefaults() Params {
	if p.Scale == 0 {
		p.Scale = 1.0
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// Result is what every experiment returns: something printable.
type Result interface{ String() string }

// Runner executes one experiment.
type Runner func(p Params) (Result, error)

// Registry maps experiment ids (DESIGN.md §3) to runners.
var Registry = map[string]Runner{
	"fig1":   func(p Params) (Result, error) { return Fig1(p) },
	"table1": func(p Params) (Result, error) { return Table1(p) },
	"table2": func(p Params) (Result, error) { return Table2(p) },
	"fig2":   func(p Params) (Result, error) { return Fig2(p) },
	"table4": func(p Params) (Result, error) { return Table4(p) },
	"fig4":   func(p Params) (Result, error) { return Fig4(p) },
	"fig5":   func(p Params) (Result, error) { return Fig5(p) },
	"fig6":   func(p Params) (Result, error) { return Fig6(p) },
	"fig7":   func(p Params) (Result, error) { return Fig7(p) },
	"fig8a":  func(p Params) (Result, error) { return Fig8a(p) },
	"fig8b":  func(p Params) (Result, error) { return Fig8b(p) },
	"fig9":   func(p Params) (Result, error) { return Fig9(p) },
	"fig10":  func(p Params) (Result, error) { return Fig10(p) },
	"fig11a": func(p Params) (Result, error) { return Fig11a(p) },
	"fig11b": func(p Params) (Result, error) { return Fig11b(p) },
	"sec583": func(p Params) (Result, error) { return Sec583(p) },
}

// IDs returns the registered experiment ids in a stable order.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// --- shared model cache ---

var (
	modelMu    sync.Mutex
	modelCache = map[uint64]*predict.Model{}
)

// sharedModel returns the prediction model for p, training one if
// needed. Training uses the paper's pipeline at a reduced session count
// so experiments stay fast; accuracy is evaluated in fig11a/table4.
func sharedModel(p Params) (*predict.Model, error) {
	if p.Model != nil {
		return p.Model, nil
	}
	modelMu.Lock()
	defer modelMu.Unlock()
	if m, ok := modelCache[p.Seed]; ok {
		return m, nil
	}
	gen := dataset.GenConfig{
		Sizes:        []int{3, 4, 5, 6, 7, 8},
		DrawsPerSize: 8,
		Seed:         p.Seed ^ 0xd1ce,
	}
	ds, _ := dataset.Generate(gen)
	m, err := predict.Train(ds, predict.TrainConfig{Forest: rf.Config{NumTrees: 60, Seed: p.Seed}})
	if err != nil {
		return nil, err
	}
	modelCache[p.Seed] = m
	return m, nil
}

// --- shared cluster/measurement protocol ---

// queryStart is the common simulated instant (seconds) at which every
// compared variant launches its query. Static-independent measurement
// happens early (and is stale by then); simultaneous measurement and
// snapshots happen just before. Link-fluctuation draws depend only on
// elapsed time, so all variants see identical network weather from
// queryStart onward.
const queryStart = 700.0

// beliefKind selects how a scheduler's bandwidth matrix is obtained.
type beliefKind int

const (
	beliefStaticIndependent beliefKind = iota
	beliefStaticSimultaneous
	beliefPredicted
)

func (k beliefKind) String() string {
	switch k {
	case beliefStaticIndependent:
		return "static-independent"
	case beliefStaticSimultaneous:
		return "static-simultaneous"
	default:
		return "predicted"
	}
}

// obtainBelief measures/predicts a bandwidth matrix on sim according to
// kind, then fast-forwards to queryStart so the subsequent query runs
// under identical conditions for every variant.
func obtainBelief(sim substrate.Cluster, kind beliefKind, model *predict.Model, seed uint64) (bwmatrix.Matrix, error) {
	switch kind {
	case beliefStaticIndependent:
		// Measured early, one pair at a time — stale by query time.
		m, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
		if sim.Now() > queryStart {
			return nil, fmt.Errorf("experiments: static measurement overran query start (%.0fs)", sim.Now())
		}
		sim.RunUntil(queryStart)
		return m, nil
	case beliefStaticSimultaneous:
		sim.RunUntil(queryStart - 20)
		m, _ := measure.StaticSimultaneous(sim, measure.StableOptions())
		return m, nil
	default:
		sim.RunUntil(queryStart - 1)
		feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(seed, "belief-snapshot"))
		return model.PredictMatrix(feats), nil
	}
}

// schedFor builds a Tetrium or Kimchi scheduler over a believed matrix.
func schedFor(system string, label string, believed bwmatrix.Matrix, info gda.ClusterInfo) spark.Scheduler {
	switch system {
	case "tetrium":
		return gda.Tetrium{Label: label, Believed: believed, Info: info}
	case "kimchi":
		return gda.Kimchi{Label: label, Believed: believed, Info: info}
	default:
		panic("experiments: unknown system " + system)
	}
}

// pct returns the relative improvement of v over base in percent
// (positive = v is lower/better).
func pct(base, v float64) float64 {
	if base == 0 {
		return 0
	}
	return (base - v) / base * 100
}

// rates is the shared pricing table.
var rates = cost.DefaultRates()
