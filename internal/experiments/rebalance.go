package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/tracesim"
	"github.com/wanify/wanify/internal/workloads"
)

// --- rebalance / rebalance-trace: mid-job re-gauging & rebalancing ---
//
// The paper's headline is *runtime* gauging, yet its evaluation (and
// every driver above) computes the global plan once per job. These two
// extension drivers measure what the internal/runtime controller buys
// when WAN conditions shift mid-shuffle:
//
//   - rebalance runs on netsim with an injected fluctuation: partway
//     into the shuffle every link out of US East degrades to 45% of
//     its nominal per-connection cap for a few minutes (the transient
//     episode shape of §2.2), then recovers.
//   - rebalance-trace replays the bundled cloud4 recording, whose
//     US East -> EU West link drops to ~45% during its 600-900 s
//     congestion episode. The job is launched just before the episode
//     so the one-shot plan is built on pre-congestion bandwidths and
//     goes stale exactly as the paper warns.
//
// Each driver runs the same job twice under identical network
// histories: once with the static one-shot plan (controller off) and
// once with mid-job re-gauging (controller on), reporting completion
// times, the replan history and the re-gauging measurement bill.

func init() {
	Registry["rebalance"] = func(p Params) (Result, error) { return Rebalance(p) }
	Registry["rebalance-trace"] = func(p Params) (Result, error) { return RebalanceTrace(p) }
}

// rebalanceRuntime is the controller configuration both drivers use:
// 15-second aggregation epochs, two-epoch hysteresis and a 30-second
// cooldown — reactive enough to catch a minutes-long episode, damped
// enough that the stable phases replan nothing.
func rebalanceRuntime() rgauge.Config {
	return rgauge.Config{
		Enabled:          true,
		EpochS:           15,
		HysteresisEpochs: 2,
		CooldownS:        30,
	}
}

// RebalanceVariant is one compared execution.
type RebalanceVariant struct {
	Variant        string // static | regauge
	JCTSeconds     float64
	MinShuffleMbps float64
	WANBytes       float64
	Replans        int
	DriftEpochs    int
	Events         []string
	RegaugeBytes   float64 // probe traffic spent on re-gauge snapshots
}

// RebalanceResult compares the static one-shot plan with mid-job
// re-gauging under one episode scenario.
type RebalanceResult struct {
	Scenario string
	Episode  string
	Rows     []RebalanceVariant
	// ImprovementPct is the JCT reduction of regauge vs static
	// (positive = re-gauging finished sooner).
	ImprovementPct float64
}

// String renders the comparison.
func (r *RebalanceResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Mid-job re-gauging on %s (%s)\n", r.Scenario, r.Episode)
	fmt.Fprintf(&b, "%-10s%12s%14s%12s%10s%8s\n", "plan", "JCT(s)", "minBW(Mbps)", "WAN(GB)", "replans", "drift")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s%12.1f%14.1f%12.2f%10d%8d\n",
			row.Variant, row.JCTSeconds, row.MinShuffleMbps, row.WANBytes/1e9, row.Replans, row.DriftEpochs)
	}
	for _, row := range r.Rows {
		for _, ev := range row.Events {
			fmt.Fprintf(&b, "  replan %s\n", ev)
		}
		if row.RegaugeBytes > 0 {
			fmt.Fprintf(&b, "  re-gauge probe traffic: %.1f MB\n", row.RegaugeBytes/1e6)
		}
	}
	fmt.Fprintf(&b, "re-gauged plan completes %.1f%% sooner than the static plan\n", r.ImprovementPct)
	return b.String()
}

// runRebalanceVariant executes one TeraSort under the given cluster
// factory, starting the job at startAt, with or without the re-gauging
// controller.
func runRebalanceVariant(p Params, mk func() (substrate.Cluster, error), startAt, totalBytes float64, regauge bool) (RebalanceVariant, error) {
	model, err := sharedModel(p)
	if err != nil {
		return RebalanceVariant{}, err
	}
	sim, err := mk()
	if err != nil {
		return RebalanceVariant{}, err
	}
	cfg := wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: true},
	}
	if regauge {
		cfg.Runtime = rebalanceRuntime()
	}
	fw, err := wanify.New(cfg, model)
	if err != nil {
		return RebalanceVariant{}, err
	}
	sim.RunUntil(startAt - 1)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()

	job := workloads.TeraSort(workloads.UniformInput(sim.NumDCs(), totalBytes))
	eng := spark.NewEngine(sim, rates)
	sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
	res, err := eng.RunJob(job, sched, policy)
	if err != nil {
		return RebalanceVariant{}, err
	}
	v := RebalanceVariant{
		Variant:        "static",
		JCTSeconds:     res.JCTSeconds,
		MinShuffleMbps: res.MinShuffleMbps,
		WANBytes:       res.WANBytes,
	}
	if ctl := fw.Controller(); ctl != nil {
		v.Variant = "regauge"
		v.Replans = ctl.Replans()
		v.DriftEpochs = ctl.DriftEpochs()
		for _, ev := range ctl.Events() {
			v.Events = append(v.Events, ev.String())
		}
		v.RegaugeBytes = ctl.TotalCost().BytesTransferred
	}
	return v, nil
}

func rebalanceCompare(p Params, scenario, episode string, mk func() (substrate.Cluster, error), startAt, totalBytes float64) (*RebalanceResult, error) {
	res := &RebalanceResult{Scenario: scenario, Episode: episode}
	for _, regauge := range []bool{false, true} {
		row, err := runRebalanceVariant(p, mk, startAt, totalBytes, regauge)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	res.ImprovementPct = pct(res.Rows[0].JCTSeconds, res.Rows[1].JCTSeconds)
	return res, nil
}

// Rebalance is the netsim episode scenario: a 100 GB-class TeraSort
// (scaled by Params.Scale) whose shuffle is hit 60 seconds in by a
// 4-minute degradation of every link out of US East.
func Rebalance(p Params) (*RebalanceResult, error) {
	p = p.withDefaults()
	const (
		episodeStart = queryStart + 60
		episodeEnd   = episodeStart + 240
		cutFactor    = 0.45
	)
	mk := func() (substrate.Cluster, error) {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, p.Seed))
		base := make([]float64, sim.NumDCs())
		for j := 1; j < sim.NumDCs(); j++ {
			base[j] = sim.PerConnCapMbps(0, j)
		}
		sim.After(episodeStart, func(float64) {
			for j := 1; j < sim.NumDCs(); j++ {
				sim.SetPerConnCap(0, j, base[j]*cutFactor)
			}
		})
		sim.After(episodeEnd, func(float64) {
			for j := 1; j < sim.NumDCs(); j++ {
				sim.SetPerConnCap(0, j, base[j])
			}
		})
		return sim, nil
	}
	return rebalanceCompare(p,
		"netsim 8-DC testbed",
		fmt.Sprintf("US East egress cut to %.0f%% during t=[%.0f, %.0f]s", cutFactor*100, float64(episodeStart), float64(episodeEnd)),
		mk, queryStart, 1000e9*p.Scale)
}

// RebalanceTrace is the cloud4 scenario: the job launches at t=560 s,
// 40 seconds before the recording's US East -> EU West congestion
// episode, so the one-shot plan is built on pre-congestion bandwidths.
func RebalanceTrace(p Params) (*RebalanceResult, error) {
	p = p.withDefaults()
	const startAt = 560.0
	mk := func() (substrate.Cluster, error) {
		return tracesim.New(tracesim.Config{
			Trace: tracesim.Cloud4(),
			Spec:  substrate.T2Medium,
			Seed:  p.Seed,
		})
	}
	return rebalanceCompare(p,
		"trace:cloud4 4-DC replay",
		"recorded US East->EU West congestion episode at t=[600, 900]s",
		mk, startAt, 600e9*p.Scale)
}
