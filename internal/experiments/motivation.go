package experiments

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/stats"
	"github.com/wanify/wanify/internal/substrate"
)

// --- Fig. 1: the 8-DC single-connection bandwidth map ---

// Fig1Result is the measured static-independent matrix over the
// 8-region testbed, with the paper's two anchors called out.
type Fig1Result struct {
	Regions []geo.Region
	BW      bwmatrix.Matrix
}

// Fig1 measures the Fig. 1 topology: single-connection iPerf between
// each DC pair, one at a time.
func Fig1(p Params) (*Fig1Result, error) {
	p = p.withDefaults()
	sim, err := testbedCluster(p, 8, p.Seed)
	if err != nil {
		return nil, err
	}
	m, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
	return &Fig1Result{Regions: sim.Regions(), BW: m}, nil
}

// String renders the matrix with region labels.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1: static-independent single-connection BWs (Mbps)\n")
	fmt.Fprintf(&b, "%-10s", "")
	for _, reg := range r.Regions {
		fmt.Fprintf(&b, "%9s", abbrev(reg.Name))
	}
	b.WriteByte('\n')
	for i, reg := range r.Regions {
		fmt.Fprintf(&b, "%-10s", abbrev(reg.Name))
		for j := range r.Regions {
			fmt.Fprintf(&b, "%9.0f", r.BW[i][j])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "anchors: US East->US West = %.0f (paper 1700), US East->AP SE = %.0f (paper 121)\n",
		r.BW[0][1], r.BW[0][3])
	return b.String()
}

func abbrev(name string) string {
	r := strings.NewReplacer("US East", "USE", "US West", "USW", "AP South", "APS",
		"AP SE-2", "APSE2", "AP SE", "APSE", "AP NE", "APNE", "EU West", "EUW", "SA East", "SAE")
	return r.Replace(name)
}

// --- Table 1: gaps between static and runtime BWs ---

// Table1Result buckets the significant static-vs-runtime differences
// the way Table 1 does.
type Table1Result struct {
	Buckets     []stats.Bucket
	Significant int
	Pairs       int
	// SlowestFromSAEStatic and SlowestFromSAERuntime name the DC with
	// the weakest link from SA East under each measurement — the
	// paper's example of a changed decision input (§2.2: AP SE
	// statically, EU West at runtime).
	SlowestFromSAEStatic, SlowestFromSAERuntime string
}

// Table1 measures every unordered DC pair statically+independently,
// then all pairs simultaneously, and buckets the absolute differences
// at the paper's boundaries (100, 200], (200, 250], > 250 Mbps.
func Table1(p Params) (*Table1Result, error) {
	p = p.withDefaults()
	sim, err := testbedCluster(p, 8, p.Seed)
	if err != nil {
		return nil, err
	}
	static, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
	sim.RunUntil(queryStart - 20)
	runtime, _ := measure.StaticSimultaneous(sim, measure.StableOptions())

	// The paper measures one number per DC pair; fold directions.
	staticSym := static.Symmetrize()
	runtimeSym := runtime.Symmetrize()
	var diffs []float64
	n := staticSym.N()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := staticSym[i][j] - runtimeSym[i][j]
			if d < 0 {
				d = -d
			}
			diffs = append(diffs, d)
		}
	}
	res := &Table1Result{
		Buckets: stats.BucketCounts(diffs, []float64{100, 200, 250}),
		Pairs:   len(diffs),
	}
	for _, b := range res.Buckets {
		res.Significant += b.Count
	}
	// Slowest-DC-from-SA-East flip check (SA East is index 7).
	res.SlowestFromSAEStatic = slowestFrom(staticSym, 7, sim.Regions())
	res.SlowestFromSAERuntime = slowestFrom(runtimeSym, 7, sim.Regions())
	return res, nil
}

func slowestFrom(m bwmatrix.Matrix, src int, regions []geo.Region) string {
	best, bestBW := -1, 0.0
	for j := range regions {
		if j == src {
			continue
		}
		if best < 0 || m[src][j] < bestBW {
			best, bestBW = j, m[src][j]
		}
	}
	return regions[best].Name
}

// String renders Table 1.
func (r *Table1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: gaps between static and runtime BWs (Mbps), %d DC pairs\n", r.Pairs)
	fmt.Fprintf(&b, "%-22s", "Difference Interval")
	for _, bk := range r.Buckets {
		if bk.Hi > 1e9 {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("> %.0f", bk.Lo))
		} else {
			fmt.Fprintf(&b, "%12s", fmt.Sprintf("(%.0f, %.0f]", bk.Lo, bk.Hi))
		}
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%-22s", "Count")
	for _, bk := range r.Buckets {
		fmt.Fprintf(&b, "%12d", bk.Count)
	}
	fmt.Fprintf(&b, "\ntotal significant: %d (paper: 18 = 7/8/3)\n", r.Significant)
	fmt.Fprintf(&b, "slowest DC from SA East: static=%s runtime=%s (paper: AP SE -> EU West flip)\n",
		r.SlowestFromSAEStatic, r.SlowestFromSAERuntime)
	return b.String()
}

// --- Table 2: monitoring cost vs prediction cost ---

// Table2Row is one cluster size's annual costs.
type Table2Row struct {
	N                 int
	RuntimeMonitoring float64
	ModelTraining     float64
	Predictions       float64
}

// Table2Result reproduces the cost table.
type Table2Result struct {
	Rows    []Table2Row
	Savings float64 // fraction saved by prediction overall
}

// Table2 evaluates Eq. 1 and the session-based training/prediction cost
// model for 4, 6 and 8 DCs.
func Table2(_ Params) (*Table2Result, error) {
	r := rates
	res := &Table2Result{}
	var mon, pred float64
	for _, n := range []int{4, 6, 8} {
		row := Table2Row{
			N:                 n,
			RuntimeMonitoring: cost.RuntimeMonitoringAnnualUSD(cost.DefaultMonitoringParams(n), r),
			ModelTraining:     cost.TrainingCostUSD(cost.DefaultTrainingParams(n)),
			Predictions:       cost.PredictionCostUSD(cost.DefaultPredictionParams(n)),
		}
		mon += row.RuntimeMonitoring
		pred += row.ModelTraining + row.Predictions
		res.Rows = append(res.Rows, row)
	}
	res.Savings = 1 - pred/mon
	return res, nil
}

// String renders Table 2.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2: accurate prediction saves ~%.0f%% in costs (paper: ~96%%)\n", r.Savings*100)
	fmt.Fprintf(&b, "%-16s%-22s%-18s%-14s\n", "Number of DCs", "Runtime Monitoring", "Model Training", "Predictions")
	var tm, tt, tp float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16d$%-21.0f$%-17.0f$%-13.0f\n", row.N, row.RuntimeMonitoring, row.ModelTraining, row.Predictions)
		tm += row.RuntimeMonitoring
		tt += row.ModelTraining
		tp += row.Predictions
	}
	fmt.Fprintf(&b, "%-16s$%-21.0f$%-17.0f$%-13.0f\n", "Total", tm, tt, tp)
	fmt.Fprintf(&b, "(paper: $703/$1055/$1406 monitoring; $35/$20/$14 training; $29/$16/$11 predictions)\n")
	return b.String()
}

// --- Fig. 2: single vs uniform vs heterogeneous connections ---

// Fig2Result compares the three connection strategies on the 3-DC
// monitoring cluster and prices a reduce-stage data plan (Fig. 2(d)).
type Fig2Result struct {
	Regions              []geo.Region
	Single, Uniform, Het bwmatrix.Matrix
	HetConns             bwmatrix.ConnMatrix
	// MinBW per strategy, and the Fig 2(d) bottleneck network times.
	MinSingle, MinUniform, MinHet float64
	LatSingle, LatUniform, LatHet float64
}

// Fig2 runs the §2.2 heterogeneous-connections motivation: three DCs
// (two nearby, one distant) probed with 1 connection, uniform 8, and an
// optimizer-derived heterogeneous assignment with the same total budget.
func Fig2(p Params) (*Fig2Result, error) {
	p = p.withDefaults()
	regions := []geo.Region{geo.USEast, geo.USWest, geo.APSE}
	cfg := netsim.UniformCluster(regions, substrate.T3Nano, p.Seed)
	sim := netsim.NewSim(cfg)
	res := &Fig2Result{Regions: regions}

	probeAll := func(conns func(i, j int) int) bwmatrix.Matrix {
		type pf struct {
			i, j int
			f    substrate.Flow
			b0   float64
		}
		var probes []pf
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i != j {
					f := sim.StartProbe(sim.FirstVMOfDC(i), sim.FirstVMOfDC(j), conns(i, j))
					probes = append(probes, pf{i, j, f, f.TransferredBytes()})
				}
			}
		}
		const dur = 10.0
		sim.RunFor(dur)
		m := bwmatrix.New(3)
		for _, pr := range probes {
			m[pr.i][pr.j] = (pr.f.TransferredBytes() - pr.b0) * 8 / 1e6 / dur
			pr.f.Stop()
		}
		return m
	}

	res.Single = probeAll(func(i, j int) int { return 1 })
	res.Uniform = probeAll(func(i, j int) int { return 8 })

	// Heterogeneous counts: the paper notes Fig. 2(c)'s connections were
	// "found manually for illustration" under the same total budget
	// (8×6). The manual rule it illustrates — faraway DCs get higher
	// precedence — is reproduced by allocating the budget inversely
	// proportional to each link's measured single-connection bandwidth.
	conns := inverseBWConns(res.Single, 8*6)
	res.HetConns = conns
	res.Het = probeAll(func(i, j int) int { return conns[i][j] })

	res.MinSingle = res.Single.MinOffDiagonal()
	res.MinUniform = res.Uniform.MinOffDiagonal()
	res.MinHet = res.Het.MinOffDiagonal()

	// Fig 2(d): a reduce stage exchanging less data with the distant DC
	// (sizes in Gigabit, as in the paper). Bottleneck link time decides
	// the stage's network latency.
	plan2d := [][]float64{ // Gb from i to j
		{0, 5, 1.5},
		{5, 0, 1.5},
		{1.5, 1.5, 0},
	}
	latency := func(bw bwmatrix.Matrix) float64 {
		worst := 0.0
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if i == j || plan2d[i][j] == 0 {
					continue
				}
				if bw[i][j] <= 0 {
					continue
				}
				t := plan2d[i][j] * 1000 / bw[i][j] // Gb -> Mb over Mbps
				if t > worst {
					worst = t
				}
			}
		}
		return worst
	}
	res.LatSingle = latency(res.Single)
	res.LatUniform = latency(res.Uniform)
	res.LatHet = latency(res.Het)
	return res, nil
}

// inverseBWConns distributes a total connection budget across links
// inversely proportional to their measured bandwidth: the weakest links
// get the most connections (minimum 1 per link).
func inverseBWConns(bw bwmatrix.Matrix, budget int) bwmatrix.ConnMatrix {
	n := bw.N()
	out := bwmatrix.NewConnFilled(n, 1)
	sum := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && bw[i][j] > 0 {
				sum += 1 / bw[i][j]
			}
		}
	}
	if sum <= 0 {
		return out
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || bw[i][j] <= 0 {
				continue
			}
			v := int(float64(budget) * (1 / bw[i][j]) / sum)
			if v < 1 {
				v = 1
			}
			out[i][j] = v
		}
	}
	return out
}

// String renders the four panels.
func (r *Fig2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 2: connection strategies on 3 DCs (%s, %s, %s)\n",
		r.Regions[0].Name, r.Regions[1].Name, r.Regions[2].Name)
	fmt.Fprintf(&b, "(a) single connection BWs (Mbps):\n%s", r.Single)
	fmt.Fprintf(&b, "(b) uniform 8-connection BWs:\n%s", r.Uniform)
	fmt.Fprintf(&b, "(c) heterogeneous connections:\n%s achieved BWs:\n%s", r.HetConns, r.Het)
	fmt.Fprintf(&b, "min BW: single=%.1f uniform=%.1f heterogeneous=%.1f (%.1fx over uniform; paper: 2.1x, 120.5 -> 255.5)\n",
		r.MinSingle, r.MinUniform, r.MinHet, r.MinHet/nonZero(r.MinUniform))
	fmt.Fprintf(&b, "(d) bottleneck network time for the reduce plan: single=%.1fs uniform=%.1fs heterogeneous=%.1fs\n",
		r.LatSingle, r.LatUniform, r.LatHet)
	return b.String()
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}
