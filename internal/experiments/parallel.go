package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/wanify/wanify/internal/predict"
)

// Run is the outcome of one experiment execution, with the wall-clock
// timing cmd/wanify-bench reports in BENCH_netsim.json.
type Run struct {
	ID      string
	Seed    uint64
	Result  Result
	Err     error
	Seconds float64
}

// SharedModel returns the trained prediction model for p's seed,
// training (and caching) one if needed. Exposed so harnesses can train
// once up front and fan the same model out to concurrent drivers — the
// offline module is cluster-independent, as in a real deployment.
func SharedModel(p Params) (*predict.Model, error) {
	return sharedModel(p.withDefaults())
}

// RunConcurrent executes the given experiment ids across a pool of
// workers on p's backend and returns one Run per id, in input order.
func RunConcurrent(ids []string, p Params, workers int) []Run {
	scenarios := make([]Scenario, len(ids))
	for i, id := range ids {
		scenarios[i] = Scenario{ID: id, Backend: p.Backend}
	}
	return RunScenarios(scenarios, p, workers)
}

// RunScenarios executes the given scenarios (experiment × backend)
// across a pool of workers and returns one Run per scenario, in input
// order. Every driver is deterministic for a given seed and owns its
// private cluster, so results are identical to a sequential run
// regardless of worker count; the only shared state is the read-only
// prediction model, which is trained before the fan-out so workers
// never contend on training.
//
// workers <= 0 selects GOMAXPROCS.
func RunScenarios(scenarios []Scenario, p Params, workers int) []Run {
	p = p.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	if p.Model == nil {
		// Train the shared model once; a failure surfaces per run so
		// callers see which experiments needed it.
		if m, err := sharedModel(p); err == nil {
			p.Model = m
		}
	}

	runs := make([]Run, len(scenarios))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(scenarios) {
					return
				}
				runs[i] = runOne(scenarios[i], p)
			}
		}()
	}
	wg.Wait()
	return runs
}

// runOne executes a single scenario, timing it.
func runOne(sc Scenario, p Params) Run {
	r := Run{ID: sc.Name(), Seed: p.Seed}
	runner, ok := Registry[sc.ID]
	if !ok {
		r.Err = fmt.Errorf("experiments: unknown experiment %q", sc.ID)
		return r
	}
	if !SupportsBackend(sc.ID, sc.Backend) {
		r.Err = fmt.Errorf("experiments: %s does not support backend %s", sc.ID, sc.Backend)
		return r
	}
	p.Backend = sc.Backend
	start := time.Now()
	r.Result, r.Err = runner(p)
	r.Seconds = time.Since(start).Seconds()
	return r
}
