package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/wanify/wanify/internal/predict"
)

// Run is the outcome of one experiment execution, with the wall-clock
// timing cmd/wanify-bench reports in BENCH_netsim.json.
type Run struct {
	ID      string
	Seed    uint64
	Result  Result
	Err     error
	Seconds float64
}

// SharedModel returns the trained prediction model for p's seed,
// training (and caching) one if needed. Exposed so harnesses can train
// once up front and fan the same model out to concurrent drivers — the
// offline module is cluster-independent, as in a real deployment.
func SharedModel(p Params) (*predict.Model, error) {
	return sharedModel(p.withDefaults())
}

// RunConcurrent executes the given experiment ids across a pool of
// workers and returns one Run per id, in input order. Every driver is
// deterministic for a given seed and owns its private Sim, so results
// are identical to a sequential run regardless of worker count; the
// only shared state is the read-only prediction model, which is
// trained before the fan-out so workers never contend on training.
//
// workers <= 0 selects GOMAXPROCS.
func RunConcurrent(ids []string, p Params, workers int) []Run {
	p = p.withDefaults()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}
	if p.Model == nil {
		// Train the shared model once; a failure surfaces per run so
		// callers see which experiments needed it.
		if m, err := sharedModel(p); err == nil {
			p.Model = m
		}
	}

	runs := make([]Run, len(ids))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= len(ids) {
					return
				}
				runs[i] = runOne(ids[i], p)
			}
		}()
	}
	wg.Wait()
	return runs
}

// runOne executes a single experiment, timing it.
func runOne(id string, p Params) Run {
	r := Run{ID: id, Seed: p.Seed}
	runner, ok := Registry[id]
	if !ok {
		r.Err = fmt.Errorf("experiments: unknown experiment %q", id)
		return r
	}
	start := time.Now()
	r.Result, r.Err = runner(p)
	r.Seconds = time.Since(start).Seconds()
	return r
}
