package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// --- degrade: poisoned snapshots vs failure-aware gauging ---
//
// The rebalance drivers show what mid-job re-gauging buys when the WAN
// *shifts*; this one shows what it costs when the WAN *breaks the
// measurement itself*. Three DCs of the 8-DC testbed go dark moments
// before the controller's stale-plan re-gauge opens its probe window,
// and a connection reset strikes a healthy pair mid-snapshot:
//
//   - clean never sees the faults — the reference JCT.
//   - naive runs the legacy controller: the snapshot returns near-zero
//     rates for every pair touching a dark DC, the optimizer dutifully
//     replans around bandwidth that is merely unmeasured, and the job
//     drags that poisoned plan long after the blackout heals.
//   - hardened runs the same schedule with failure-aware gauging: the
//     partial snapshot tags the dark pairs Unmeasurable, coverage falls
//     below the replan threshold, the controller refuses the swap (and
//     eventually opens its circuit breaker), and the pre-fault plan —
//     still correct for the post-heal network — keeps the job near the
//     clean JCT.
//
// All three variants run the identical TeraSort with spark recovery
// enabled, so the only degree of freedom is how the controller treats a
// snapshot it cannot trust.

func init() {
	Registry["degrade"] = func(p Params) (Result, error) { return Degrade(p) }
}

// The fault timeline is cut against the controller's stale re-gauge:
// enabled just before queryStart with StaleAfterS=45 and 15 s epochs,
// the controller opens its 1 s probe window at t=745. The blackout
// lands just before the window so dark pairs measure zero for its
// entire duration, and the pair reset lands inside the window, killing
// an in-flight probe.
const (
	degradeBlackoutStart = queryStart + 43.8 // 743.8: just before the probe window
	degradeBlackoutEnd   = queryStart + 100  // 800: heals mid-job
	degradeResetAt       = queryStart + 45.4 // 745.4: mid-snapshot probe kill
	degradeResetSrc      = 4
	degradeResetDst      = 5
)

// degradeDarkDCs are the partitioned DCs; 3 of 8 dark leaves 20 of 56
// pairs measurable — coverage 0.36, well under the 0.6 replan floor.
var degradeDarkDCs = []int{1, 2, 3}

// degradeSchedule is the shared fault script for the naive and hardened
// variants.
func degradeSchedule() substrate.FaultSchedule {
	var s substrate.FaultSchedule
	for _, dc := range degradeDarkDCs {
		s = append(s, substrate.Fault{
			Kind: substrate.FaultPartitionDC, DC: dc,
			At: degradeBlackoutStart, Until: degradeBlackoutEnd,
		})
	}
	s = append(s, substrate.Fault{
		Kind: substrate.FaultResetPair, SrcDC: degradeResetSrc, DstDC: degradeResetDst,
		At: degradeResetAt,
	})
	return s
}

// degradeRuntime is the controller configuration: the rebalance cadence
// plus a 45 s staleness bound so a re-gauge is guaranteed during the
// blackout, with the hardened machinery toggled per variant.
func degradeRuntime(hardened bool) rgauge.Config {
	return rgauge.Config{
		Enabled:          true,
		EpochS:           15,
		HysteresisEpochs: 2,
		CooldownS:        30,
		StaleAfterS:      45,
		Hardened:         hardened,
	}
}

// DegradeVariant is one compared execution.
type DegradeVariant struct {
	Variant      string // clean | naive | hardened
	JCTSeconds   float64
	WANBytes     float64
	Replans      int
	Rejected     int // snapshots refused for low coverage
	Retries      int // probe retries spent across hardened snapshots
	Unmeasurable int // pair outcomes tagged Unmeasurable
	Fused        int // pairs filled from the belief store
	Events       []string
	Incidents    []string
}

// DegradeResult compares the three variants under one fault script.
type DegradeResult struct {
	Scenario string
	Fault    string
	Rows     []DegradeVariant
	// HardenedVsNaivePct is the JCT reduction of hardened vs naive
	// (positive = failure-aware gauging finished sooner).
	HardenedVsNaivePct float64
	// HardenedVsCleanPct is how far hardened lands from the no-fault
	// reference (positive = slower than clean, the unavoidable stall).
	HardenedVsCleanPct float64
}

// String renders the comparison.
func (r *DegradeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Poisoned-snapshot degradation on %s\n(%s)\n", r.Scenario, r.Fault)
	fmt.Fprintf(&b, "%-10s%12s%12s%9s%10s%9s%8s%7s\n",
		"variant", "JCT(s)", "WAN(GB)", "replans", "rejected", "retries", "unmeas", "fused")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s%12.1f%12.2f%9d%10d%9d%8d%7d\n",
			row.Variant, row.JCTSeconds, row.WANBytes/1e9,
			row.Replans, row.Rejected, row.Retries, row.Unmeasurable, row.Fused)
	}
	for _, row := range r.Rows {
		for _, ev := range row.Events {
			fmt.Fprintf(&b, "  %s replan %s\n", row.Variant, ev)
		}
		for _, in := range row.Incidents {
			fmt.Fprintf(&b, "  %s incident %s\n", row.Variant, in)
		}
	}
	fmt.Fprintf(&b, "hardened completes %.1f%% sooner than the poisoned naive replan, %.1f%% over the clean run\n",
		r.HardenedVsNaivePct, r.HardenedVsCleanPct)
	return b.String()
}

// runDegradeVariant executes one TeraSort under the degrade scenario.
func runDegradeVariant(p Params, variant string) (DegradeVariant, error) {
	model, err := sharedModel(p)
	if err != nil {
		return DegradeVariant{}, err
	}
	sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, p.Seed))
	if variant != "clean" {
		degradeSchedule().Apply(sim)
	}
	cfg := wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent:   agent.Config{Throttle: true},
		Runtime: degradeRuntime(variant == "hardened"),
	}
	fw, err := wanify.New(cfg, model)
	if err != nil {
		return DegradeVariant{}, err
	}
	sim.RunUntil(queryStart - 1)
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()

	job := workloads.TeraSort(workloads.UniformInput(sim.NumDCs(), 1000e9*p.Scale))
	eng := spark.NewEngine(sim, rates)
	eng.Recovery = spark.RecoveryConfig{Enabled: true}
	sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
	res, err := eng.RunJob(job, sched, policy)
	if err != nil {
		return DegradeVariant{}, fmt.Errorf("%s: %w", variant, err)
	}
	v := DegradeVariant{
		Variant:    variant,
		JCTSeconds: res.JCTSeconds,
		WANBytes:   res.WANBytes,
	}
	if ctl := fw.Controller(); ctl != nil {
		v.Replans = ctl.Replans()
		g := ctl.Gauge()
		v.Rejected = g.RejectedSnapshots
		v.Retries = g.Retries
		v.Unmeasurable = g.UnmeasurablePairs
		v.Fused = g.FusedPairs
		for _, ev := range ctl.Events() {
			v.Events = append(v.Events, ev.String())
		}
		for _, in := range ctl.Incidents() {
			v.Incidents = append(v.Incidents, in.String())
		}
	}
	return v, nil
}

// Degrade runs the three variants and reports the JCT spread.
func Degrade(p Params) (*DegradeResult, error) {
	p = p.withDefaults()
	res := &DegradeResult{
		Scenario: "netsim 8-DC testbed",
		Fault: fmt.Sprintf("dc1-3 partitioned t=[%.1f, %.1f]s across the t=745 re-gauge window, dc%d->dc%d reset at t=%.1fs",
			degradeBlackoutStart, degradeBlackoutEnd, degradeResetSrc, degradeResetDst, degradeResetAt),
	}
	for _, variant := range []string{"clean", "naive", "hardened"} {
		row, err := runDegradeVariant(p, variant)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	res.HardenedVsNaivePct = pct(res.Rows[1].JCTSeconds, res.Rows[2].JCTSeconds)
	res.HardenedVsCleanPct = -pct(res.Rows[0].JCTSeconds, res.Rows[2].JCTSeconds)
	return res, nil
}
