package experiments

import (
	"encoding/json"
	"os"
	"sort"
	"testing"

	"github.com/wanify/wanify/internal/netsim"
)

// TestAllocatorChurnRegression is the benchmark-regression smoke: it
// replays the churn loop wanify-bench timed into the committed
// BENCH_netsim.json and fails if the allocator hot path regressed more
// than 30% against that baseline. The comparison is on the
// incremental/from-scratch-reference ratio, which cancels raw machine
// speed — a CI runner slower than the laptop that recorded the
// baseline does not trip the gate, a genuinely slower incremental
// path does. The guard only arms when WANIFY_BENCH_GUARD=1 (the CI
// bench job sets it); regular `go test ./...` skips it.
func TestAllocatorChurnRegression(t *testing.T) {
	if os.Getenv("WANIFY_BENCH_GUARD") == "" {
		t.Skip("set WANIFY_BENCH_GUARD=1 to arm the benchmark-regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_netsim.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var report struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	baseInc := report.Benchmarks["allocator_churn_ns_per_op"]
	baseRef := report.Benchmarks["allocator_churn_reference_ns_per_op"]
	if baseInc <= 0 || baseRef <= 0 {
		t.Fatal("baseline lacks allocator_churn[_reference]_ns_per_op (regenerate with wanify-bench)")
	}
	baseRatio := baseInc / baseRef

	// Median of several measurements rides out scheduler noise; the
	// reference pass is ~7x the incremental one, so keep rounds modest.
	const rounds = 5000
	var ratios []float64
	for i := 0; i < 5; i++ {
		inc := netsim.ChurnNsPerOp(true, rounds)
		ref := netsim.ChurnNsPerOp(false, rounds)
		ratios = append(ratios, inc/ref)
	}
	sort.Float64s(ratios)
	got := ratios[len(ratios)/2]
	t.Logf("allocator churn ratio incremental/reference: %.3f (baseline %.3f)", got, baseRatio)
	if got > baseRatio*1.30 {
		t.Fatalf("allocator churn regressed: ratio %.3f vs baseline %.3f (>30%%)", got, baseRatio)
	}
}
