package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"

	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
)

// TestAllocatorChurnRegression is the benchmark-regression smoke: it
// replays the churn loop wanify-bench timed into the committed
// BENCH_netsim.json and fails if the allocator hot path regressed more
// than 30% against that baseline. The comparison is on the
// incremental/from-scratch-reference ratio, which cancels raw machine
// speed — a CI runner slower than the laptop that recorded the
// baseline does not trip the gate, a genuinely slower incremental
// path does. The guard only arms when WANIFY_BENCH_GUARD=1 (the CI
// bench job sets it); regular `go test ./...` skips it.
func TestAllocatorChurnRegression(t *testing.T) {
	if os.Getenv("WANIFY_BENCH_GUARD") == "" {
		t.Skip("set WANIFY_BENCH_GUARD=1 to arm the benchmark-regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_netsim.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var report struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	baseInc := report.Benchmarks["allocator_churn_ns_per_op"]
	baseRef := report.Benchmarks["allocator_churn_reference_ns_per_op"]
	if baseInc <= 0 || baseRef <= 0 {
		t.Fatal("baseline lacks allocator_churn[_reference]_ns_per_op (regenerate with wanify-bench)")
	}
	baseRatio := baseInc / baseRef

	// Median of several measurements rides out scheduler noise; the
	// reference pass is ~7x the incremental one, so keep rounds modest.
	const rounds = 5000
	var ratios []float64
	for i := 0; i < 5; i++ {
		inc := netsim.ChurnNsPerOp(true, rounds)
		ref := netsim.ChurnNsPerOp(false, rounds)
		ratios = append(ratios, inc/ref)
	}
	sort.Float64s(ratios)
	got := ratios[len(ratios)/2]
	t.Logf("allocator churn ratio incremental/reference: %.3f (baseline %.3f)", got, baseRatio)
	if got > baseRatio*1.30 {
		t.Fatalf("allocator churn regressed: ratio %.3f vs baseline %.3f (>30%%)", got, baseRatio)
	}
}

// TestPlanningBenchRegression extends the guard to the planning-layer
// hot paths: the delta-evaluated scheduler search, forest training and
// batch prediction each replay their wanify-bench microbenchmark and
// fail on a >30% regression of the optimized/reference ratio against
// the committed BENCH_netsim.json. Ratios cancel raw machine speed;
// the rf_train pair additionally pins its worker count via
// rf.BenchWorkers() (min(4, GOMAXPROCS)) on both the recording and the
// guard side, so differing core counts shift the ratio only as far as
// real parallel speedup does. Armed by WANIFY_BENCH_GUARD=1, like the
// allocator guard above.
func TestPlanningBenchRegression(t *testing.T) {
	if os.Getenv("WANIFY_BENCH_GUARD") == "" {
		t.Skip("set WANIFY_BENCH_GUARD=1 to arm the benchmark-regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_netsim.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var report struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}

	// The optimized side gets more rounds than the reference: it is
	// several times faster, so this keeps the two timing windows
	// comparable without making the guard slow.
	benches := []struct {
		key     string
		measure func(optimized bool) float64
	}{
		{"scheduler_place", func(opt bool) float64 {
			if opt {
				return gda.PlaceNsPerOp(true, 40)
			}
			return gda.PlaceNsPerOp(false, 10)
		}},
		{"rf_train", func(opt bool) float64 {
			if opt {
				return rf.TrainNsPerOp(true, 4)
			}
			return rf.TrainNsPerOp(false, 2)
		}},
		{"rf_predict_batch", func(opt bool) float64 { return rf.PredictBatchNsPerOp(opt, 40) }},
	}
	// One guarded pair per descent objective: every scorer rides the
	// same pooled delta-evaluated search, so a regression in the shared
	// machinery (or in one scorer's aggregate maintenance) trips the
	// corresponding ratio.
	for _, s := range []struct{ key, spec string }{
		{"scorer_jct", "jct"},
		{"scorer_cost", "cost"},
		{"scorer_carbon", "carbon"},
		{"scorer_blend", "blend:jct=0.34,cost=0.33,carbon=0.33"},
	} {
		spec := s.spec
		benches = append(benches, struct {
			key     string
			measure func(optimized bool) float64
		}{s.key, func(opt bool) float64 {
			if opt {
				return gda.ScorerPlaceNsPerOp(spec, true, 40)
			}
			return gda.ScorerPlaceNsPerOp(spec, false, 10)
		}})
	}
	for _, b := range benches {
		b := b
		t.Run(b.key, func(t *testing.T) {
			baseOpt := report.Benchmarks[b.key+"_ns_per_op"]
			baseRef := report.Benchmarks[b.key+"_reference_ns_per_op"]
			if baseOpt <= 0 || baseRef <= 0 {
				t.Fatalf("baseline lacks %s[_reference]_ns_per_op (regenerate with wanify-bench)", b.key)
			}
			baseRatio := baseOpt / baseRef

			var ratios []float64
			for i := 0; i < 3; i++ {
				ratios = append(ratios, b.measure(true)/b.measure(false))
			}
			sort.Float64s(ratios)
			got := ratios[len(ratios)/2]
			t.Logf("%s ratio optimized/reference: %.3f (baseline %.3f)", b.key, got, baseRatio)
			if got > baseRatio*1.30 {
				t.Fatalf("%s regressed: ratio %.3f vs baseline %.3f (>30%%)", b.key, got, baseRatio)
			}
		})
	}
}

// TestServeBenchRegression extends the guard to the control plane's
// admission→plan latency: it replays the serve load test (the same
// 1100-submission script wanify-bench runs) and fails if the p50
// admission critical path regressed more than 30% relative to the
// allocator-churn microbenchmark — the ratio cancels raw machine
// speed, so the gate trips on a genuinely slower admission path (slot
// claim + window re-partition + agent deployment), not a slower
// runner. The p99 gets a wider 60% band: a tail percentile of one
// scripted run is inherently noisier than a median. Armed by
// WANIFY_BENCH_GUARD=1, like every guard above.
func TestServeBenchRegression(t *testing.T) {
	if os.Getenv("WANIFY_BENCH_GUARD") == "" {
		t.Skip("set WANIFY_BENCH_GUARD=1 to arm the benchmark-regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_netsim.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var report struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	baseP50 := report.Benchmarks["serve_admit_p50_ns"]
	baseP99 := report.Benchmarks["serve_admit_p99_ns"]
	baseChurn := report.Benchmarks["allocator_churn_ns_per_op"]
	if baseP50 <= 0 || baseP99 <= 0 || baseChurn <= 0 {
		t.Fatal("baseline lacks serve_admit_p50/p99_ns or allocator_churn_ns_per_op (regenerate with wanify-bench -run all)")
	}

	churn := netsim.ChurnNsPerOp(true, 5000)
	var p50s, p99s []float64
	for i := 0; i < 3; i++ {
		res, err := ServeLoad(Params{Seed: 1, Scale: 0.1})
		if err != nil {
			t.Fatalf("serve load: %v", err)
		}
		p50, p99 := res.AdmitPercentiles()
		p50s = append(p50s, p50/churn)
		p99s = append(p99s, p99/churn)
	}
	sort.Float64s(p50s)
	sort.Float64s(p99s)
	gotP50, gotP99 := p50s[len(p50s)/2], p99s[len(p99s)/2]
	t.Logf("serve admit/churn ratios: p50 %.2f (baseline %.2f), p99 %.2f (baseline %.2f)",
		gotP50, baseP50/baseChurn, gotP99, baseP99/baseChurn)
	if gotP50 > baseP50/baseChurn*1.30 {
		t.Fatalf("serve admission p50 regressed: ratio %.2f vs baseline %.2f (>30%%)", gotP50, baseP50/baseChurn)
	}
	if gotP99 > baseP99/baseChurn*1.60 {
		t.Fatalf("serve admission p99 regressed: ratio %.2f vs baseline %.2f (>60%%)", gotP99, baseP99/baseChurn)
	}
}

// TestFleetScaleBenchRegression extends the guard to the scale-tiered
// allocator curves: at each fleet tier recorded in BENCH_netsim.json
// it replays the full-refill benchmark and fails if the
// sharded/unsharded per-flow ratio regressed more than 30% against
// the committed baseline (plus a small absolute slack, see below). As
// everywhere in the guard, the ratio cancels raw machine speed; it
// moves only when sharding itself stops paying (groups collapsing
// into one, per-group filling getting slower relative to the global
// loop). Armed by WANIFY_BENCH_GUARD=1.
func TestFleetScaleBenchRegression(t *testing.T) {
	if os.Getenv("WANIFY_BENCH_GUARD") == "" {
		t.Skip("set WANIFY_BENCH_GUARD=1 to arm the benchmark-regression guard")
	}
	raw, err := os.ReadFile("../../BENCH_netsim.json")
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	var report struct {
		Benchmarks map[string]float64 `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &report); err != nil {
		t.Fatalf("parsing baseline: %v", err)
	}
	armed := 0
	for _, dcs := range geo.FleetTiers {
		key := fmt.Sprintf("fleet_alloc_%ddc", dcs)
		baseSharded := report.Benchmarks[key+"_ns_per_flow"]
		baseUnsharded := report.Benchmarks[key+"_unsharded_ns_per_flow"]
		if baseSharded <= 0 || baseUnsharded <= 0 {
			continue // tier not in the committed baseline
		}
		armed++
		baseRatio := baseSharded / baseUnsharded

		var ratios []float64
		for i := 0; i < 3; i++ {
			st := netsim.FleetAllocNsPerFlow(dcs, 200)
			ratios = append(ratios, st.NsPerFlow/st.UnshardedNsPerFlow)
		}
		sort.Float64s(ratios)
		got := ratios[len(ratios)/2]
		t.Logf("%s sharded/unsharded ratio: %.4f (baseline %.4f)", key, got, baseRatio)
		// At the big tiers the ratio is minuscule (sharding wins ~50x+),
		// so a purely multiplicative band would trip on timing noise in
		// the tiny numerator; the absolute slack term only matters there,
		// where a wobble between 40x and 56x is not a regression. What
		// the guard exists to catch — the win collapsing toward 1 — blows
		// through both terms.
		if got > baseRatio*1.30+0.01 {
			t.Fatalf("%s regressed: sharded/unsharded ratio %.4f vs baseline %.4f (>30%%)", key, got, baseRatio)
		}
	}
	if armed == 0 {
		t.Fatal("baseline lacks fleet_alloc_<n>dc_* entries (regenerate with wanify-bench)")
	}
}
