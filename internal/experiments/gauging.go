package experiments

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// --- Table 4: gauging runtime BW (single connection) ---

// Table4Cell is one query × system × belief measurement.
type Table4Cell struct {
	PerfPct float64 // latency improvement over static-independent, %
	CostPct float64 // cost reduction over static-independent, %
}

// Table4Result holds the full grid plus the monitoring-cost note of
// §5.2 (prediction ~$5 vs ~$80 for static-simultaneous).
type Table4Result struct {
	Queries []int
	// Cells[system][belief][query] with systems {tetrium, kimchi} and
	// beliefs {static-simultaneous, predicted}.
	Cells map[string]map[string]map[int]Table4Cell
	// Baseline JCT/cost per system per query (static-independent).
	BaselineJCT  map[string]map[int]float64
	BaselineCost map[string]map[int]float64
	// MinBWRatio is the average runtime/static minimum-BW improvement
	// observed during query execution with runtime beliefs.
	MinBWRatio float64
	// MonitoringPredictedUSD and MonitoringSimultaneousUSD price the
	// two ways of obtaining runtime BWs for these queries.
	MonitoringPredictedUSD, MonitoringSimultaneousUSD float64
}

// Table4 feeds single-connection static-independent, then
// static-simultaneous and predicted BWs into (unmodified) Tetrium and
// Kimchi and reports the performance/cost improvements on the four
// TPC-DS queries.
func Table4(p Params) (*Table4Result, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	res := &Table4Result{
		Queries:      workloads.TPCDSQueries(),
		Cells:        map[string]map[string]map[int]Table4Cell{},
		BaselineJCT:  map[string]map[int]float64{},
		BaselineCost: map[string]map[int]float64{},
	}
	input := workloads.UniformInput(8, 100e9*p.Scale)

	var minBWRatios []float64
	for _, system := range []string{"tetrium", "kimchi"} {
		res.Cells[system] = map[string]map[int]Table4Cell{
			beliefStaticSimultaneous.String(): {},
			beliefPredicted.String():          {},
		}
		res.BaselineJCT[system] = map[int]float64{}
		res.BaselineCost[system] = map[int]float64{}
		for _, q := range res.Queries {
			job, err := workloads.TPCDS(q, input)
			if err != nil {
				return nil, err
			}
			var baseJCT, baseCost, baseMinBW float64
			for _, belief := range []beliefKind{beliefStaticIndependent, beliefStaticSimultaneous, beliefPredicted} {
				sim, err := testbedCluster(p, 8, p.Seed+uint64(q)*13)
				if err != nil {
					return nil, err
				}
				believed, err := obtainBelief(sim, belief, model, p.Seed+uint64(q))
				if err != nil {
					return nil, err
				}
				eng := spark.NewEngine(sim, rates)
				info := gda.NewClusterInfo(sim, rates)
				sched := schedFor(system, fmt.Sprintf("%s(%s)", system, belief), believed, info)
				run, err := eng.RunJob(job, sched, spark.SingleConn{})
				if err != nil {
					return nil, err
				}
				switch belief {
				case beliefStaticIndependent:
					baseJCT, baseCost, baseMinBW = run.JCTSeconds, run.Cost.Total(), run.MinShuffleMbps
					res.BaselineJCT[system][q] = baseJCT
					res.BaselineCost[system][q] = baseCost
				default:
					res.Cells[system][belief.String()][q] = Table4Cell{
						PerfPct: pct(baseJCT, run.JCTSeconds),
						CostPct: pct(baseCost, run.Cost.Total()),
					}
					if baseMinBW > 0 && run.MinShuffleMbps > 0 {
						minBWRatios = append(minBWRatios, run.MinShuffleMbps/baseMinBW)
					}
				}
			}
		}
	}
	for _, r := range minBWRatios {
		res.MinBWRatio += r
	}
	if len(minBWRatios) > 0 {
		res.MinBWRatio /= float64(len(minBWRatios))
	}

	// Monitoring-cost note (§5.2): for the 4 queries, price obtaining
	// runtime BWs by 20 s simultaneous probing vs a 1 s snapshot, at the
	// observed probe traffic.
	{
		sim, err := testbedCluster(p, 8, p.Seed)
		if err != nil {
			return nil, err
		}
		_, repSim := measure.StaticSimultaneous(sim, measure.StableOptions())
		_, repSnap := measure.StaticSimultaneous(sim, measure.Options{DurationS: 1, Conns: 1})
		perQueryRuns := 4.0 * 5 // 4 queries x 5 runs each (paper protocol)
		regions := sim.Regions()
		var simUSD, snapUSD float64
		// Probe traffic is all-to-all; price it at the mean egress rate.
		meanEgress := 0.0
		for _, reg := range regions {
			meanEgress += rates.EgressPerGBFor(reg)
		}
		meanEgress /= float64(len(regions))
		simUSD = repSim.BytesTransferred / 1e9 * meanEgress * perQueryRuns
		snapUSD = repSnap.BytesTransferred / 1e9 * meanEgress * perQueryRuns
		res.MonitoringSimultaneousUSD = simUSD
		res.MonitoringPredictedUSD = snapUSD
	}
	return res, nil
}

// String renders Table 4.
func (r *Table4Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: performance-cost improvements against static BWs (single connection)\n")
	fmt.Fprintf(&b, "%-8s", "Query")
	for _, sys := range []string{"Tetrium", "Kimchi"} {
		for _, bel := range []string{"simultaneous", "predicted"} {
			fmt.Fprintf(&b, "%24s", sys+"/"+bel)
		}
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s", "")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, "%24s", "Perf(%) Cost(%)")
	}
	b.WriteString("\n")
	for _, q := range r.Queries {
		fmt.Fprintf(&b, "%-8d", q)
		for _, sys := range []string{"tetrium", "kimchi"} {
			for _, bel := range []string{beliefStaticSimultaneous.String(), beliefPredicted.String()} {
				c := r.Cells[sys][bel][q]
				fmt.Fprintf(&b, "%16.1f %7.1f", c.PerfPct, c.CostPct)
			}
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "mean min-BW improvement with runtime beliefs: %.2fx (paper: ~1.5x)\n", r.MinBWRatio)
	fmt.Fprintf(&b, "monitoring cost for these queries: predicted ~$%.2f vs static-simultaneous ~$%.2f (paper: ~$5 vs ~$80, ~94%% saving)\n",
		r.MonitoringPredictedUSD, r.MonitoringSimultaneousUSD)
	return b.String()
}
