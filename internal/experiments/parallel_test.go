package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunConcurrentMatchesSequential checks the harness contract: a
// parallel run renders exactly what a sequential run renders, in the
// same order, regardless of worker count.
func TestRunConcurrentMatchesSequential(t *testing.T) {
	// A driver subset that covers the shared model, the simulator and
	// the analytics engine while keeping the test fast.
	ids := []string{"fig1", "table2", "fig2", "fig9", "fig11b"}
	p := Params{Seed: 2, Scale: 0.1}

	render := func(runs []Run) string {
		var sb strings.Builder
		for _, r := range runs {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.ID, r.Err)
			}
			fmt.Fprintf(&sb, "=== %s ===\n%s\n", r.ID, r.Result)
		}
		return sb.String()
	}

	sequential := render(RunConcurrent(ids, p, 1))
	for _, workers := range []int{3, 8} {
		if got := render(RunConcurrent(ids, p, workers)); got != sequential {
			t.Errorf("%d-worker run diverged from sequential output", workers)
		}
	}
}

// TestRunConcurrentUnknownID checks error reporting for bad ids.
func TestRunConcurrentUnknownID(t *testing.T) {
	runs := RunConcurrent([]string{"fig1", "nope"}, Params{Seed: 1, Scale: 0.05}, 2)
	if runs[0].Err != nil {
		t.Errorf("fig1 failed: %v", runs[0].Err)
	}
	if runs[1].Err == nil {
		t.Error("unknown id did not error")
	}
	if runs[1].ID != "nope" {
		t.Error("results not in input order")
	}
}
