package experiments

// Extension experiments beyond the paper's figures: the model-choice
// ablation behind §3.1's design discussion, a sensitivity sweep over
// the two netsim design knobs DESIGN.md calls out (RTT-bias exponent
// and congestion knee), and the multi-cloud accuracy check §5.8.3
// mentions but omits for space.

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/baseline"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/substrate"
)

func init() {
	Registry["ablation-model"] = func(p Params) (Result, error) { return AblationModel(p) }
	Registry["ablation-netsim"] = func(p Params) (Result, error) { return AblationNetsim(p) }
	Registry["multicloud"] = func(p Params) (Result, error) { return MultiCloud(p) }
}

// --- model-choice ablation (§3.1) ---

// AblationModelRow scores one predictor.
type AblationModelRow struct {
	Model    string
	Accuracy float64 // fraction within 100 Mbps on held-out clusters
	RMSE     float64
	MAE      float64
}

// AblationModelResult compares the Random Forest against the simpler
// predictors §3.1 argues about, on held-out cluster sizes.
type AblationModelResult struct{ Rows []AblationModelRow }

// AblationModel trains every comparison model on the same sessions
// (cluster sizes 3/5/8) and evaluates on unseen sizes (4/6/7).
func AblationModel(p Params) (*AblationModelResult, error) {
	p = p.withDefaults()
	train, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{3, 5, 8}, DrawsPerSize: 8, Seed: p.Seed})
	test, _ := dataset.Generate(dataset.GenConfig{Sizes: []int{4, 6, 7}, DrawsPerSize: 4, Seed: p.Seed + 1})

	models := []baseline.Regressor{
		baseline.Passthrough{},
		&baseline.LinearRegression{},
		&baseline.KNN{K: 7},
		&baseline.Forest{Config: rf.Config{NumTrees: 100, MaxFeatures: 4, Seed: p.Seed}},
	}
	res := &AblationModelResult{}
	for _, m := range models {
		if err := m.Fit(train); err != nil {
			return nil, fmt.Errorf("ablation-model %s: %w", m.Name(), err)
		}
		acc, rmse, mae := baseline.Evaluate(m, test, predict.SignificantMbps)
		res.Rows = append(res.Rows, AblationModelRow{Model: m.Name(), Accuracy: acc, RMSE: rmse, MAE: mae})
	}
	return res, nil
}

// String renders the comparison.
func (r *AblationModelResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: prediction model choice (held-out cluster sizes 4/6/7)\n")
	fmt.Fprintf(&b, "%-24s%12s%10s%10s\n", "model", "acc@100Mbps", "RMSE", "MAE")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-24s%12.3f%10.1f%10.1f\n", row.Model, row.Accuracy, row.RMSE, row.MAE)
	}
	b.WriteString("(paper §3.1: RF chosen over statistical regression/CNN; CNN reached only ~85%)\n")
	return b.String()
}

// --- netsim design-knob sensitivity ---

// AblationNetsimRow is one knob setting's outcome on the two phenomena
// the knob exists to produce.
type AblationNetsimRow struct {
	Knob     string
	Value    float64
	UniformX float64 // uniform-8 min BW / single-conn min BW (Fig 2b)
	HetX     float64 // heterogeneous min BW / single-conn min BW (Fig 2c)
}

// AblationNetsimResult sweeps RTTBiasExp and CongestionKnee.
type AblationNetsimResult struct{ Rows []AblationNetsimRow }

// AblationNetsim re-runs the Fig. 2 probe pattern under swept simulator
// knobs, showing which design choices the paper's phenomena depend on:
// without the RTT bias, uniform parallelism would (wrongly) fix weak
// links; without the congestion knee, unbounded parallelism would be
// free.
func AblationNetsim(p Params) (*AblationNetsimResult, error) {
	p = p.withDefaults()
	res := &AblationNetsimResult{}
	run := func(knob string, value float64, mutate func(*netsim.Config)) {
		regions := []geo.Region{geo.USEast, geo.USWest, geo.APSE}
		cfg := netsim.UniformCluster(regions, substrate.T3Nano, p.Seed)
		cfg.Frozen = true
		mutate(&cfg)
		sim := netsim.NewSim(cfg)
		minBW := func(conns func(i, j int) int) float64 {
			var flows []substrate.Flow
			for i := 0; i < 3; i++ {
				for j := 0; j < 3; j++ {
					if i != j {
						flows = append(flows, sim.StartProbe(sim.FirstVMOfDC(i), sim.FirstVMOfDC(j), conns(i, j)))
					}
				}
			}
			sim.RunFor(8)
			min := -1.0
			for _, f := range flows {
				if r := f.Rate(); min < 0 || r < min {
					min = r
				}
			}
			for _, f := range flows {
				f.Stop()
			}
			return min
		}
		single := minBW(func(i, j int) int { return 1 })
		uniform := minBW(func(i, j int) int { return 8 })
		het := minBW(func(i, j int) int {
			if i == 2 || j == 2 {
				return 11
			}
			return 2
		})
		res.Rows = append(res.Rows, AblationNetsimRow{
			Knob: knob, Value: value,
			UniformX: uniform / nonZero(single),
			HetX:     het / nonZero(single),
		})
	}

	for _, exp := range []float64{0.5, 1.0, 1.5, 2.0} {
		e := exp
		run("rtt-bias-exp", e, func(c *netsim.Config) { c.RTTBiasExp = e })
	}
	for _, knee := range []int{8, 16, 32, 64} {
		k := knee
		run("congestion-knee", float64(k), func(c *netsim.Config) { c.CongestionKnee = k })
	}
	return res, nil
}

// String renders the sweep.
func (r *AblationNetsimResult) String() string {
	var b strings.Builder
	b.WriteString("Ablation: netsim design knobs (3-DC Fig. 2 probe pattern)\n")
	fmt.Fprintf(&b, "%-18s%8s%18s%18s\n", "knob", "value", "uniform-8 minBW x", "heterogeneous x")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-18s%8.1f%18.2f%18.2f\n", row.Knob, row.Value, row.UniformX, row.HetX)
	}
	b.WriteString("(the paper's Fig 2 shape needs uniform~1x and heterogeneous ~2x:\n")
	b.WriteString(" a weak RTT bias makes uniform parallelism look useful, contradicting §2.2)\n")
	return b.String()
}

// --- multi-cloud accuracy (§5.8.3, omitted in the paper for space) ---

// MultiCloudResult compares static vs predicted accuracy on a mixed
// AWS + GCP cluster with a provider refactoring vector.
type MultiCloudResult struct {
	StaticSig    int
	PredictedSig int
	Pairs        int
	RVecSample   float64 // the AWS-GCP cross factor used
}

// MultiCloud replaces three regions' VMs with GCP e2-medium instances,
// applies the provider rvec, and repeats the Fig. 11(a) accuracy
// comparison.
func MultiCloud(p Params) (*MultiCloudResult, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	regions := geo.Testbed()
	gcp := map[int]bool{1: true, 4: true, 6: true} // US West, AP SE-2, EU West on GCP
	vms := make([][]substrate.VMSpec, len(regions))
	providers := make([]string, len(regions))
	for i := range vms {
		if gcp[i] {
			vms[i] = []substrate.VMSpec{substrate.E2Medium}
			regions[i].Provider = "gcp"
		} else {
			vms[i] = []substrate.VMSpec{substrate.T2Medium}
		}
		providers[i] = regions[i].Provider
	}
	sim := netsim.NewSim(netsim.Config{Regions: regions, VMs: vms, Seed: p.Seed + 77})

	static, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
	sim.RunUntil(queryStart - 21)
	feats, _ := dataset.SnapshotFeatures(sim, simrand.Derive(p.Seed, "multicloud"))
	pred := model.PredictMatrix(feats)
	// Apply the provider refactoring vector: GCP e2-medium sustains a
	// slightly lower WAN share than t2.medium in this calibration.
	rvec := optimize.RefactorFromProviders(providers, map[string]float64{"aws": 1.0, "gcp": 0.95})
	for i := range pred {
		for j := range pred[i] {
			pred[i][j] *= rvec[i][j]
		}
	}
	actual, _ := measure.StaticSimultaneous(sim, measure.StableOptions())

	return &MultiCloudResult{
		StaticSig:    static.AbsDiff(actual).CountOffDiagAbove(100),
		PredictedSig: pred.AbsDiff(actual).CountOffDiagAbove(100),
		Pairs:        sim.NumDCs() * (sim.NumDCs() - 1),
		RVecSample:   rvec[0][1],
	}, nil
}

// String renders the comparison.
func (r *MultiCloudResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-cloud (AWS + GCP) accuracy check (§5.8.3, omitted in the paper)\n")
	fmt.Fprintf(&b, "significant (>100 Mbps) errors vs runtime, %d ordered pairs:\n", r.Pairs)
	fmt.Fprintf(&b, "  static-independent: %d\n  predicted (with rvec %.3f on cross-provider pairs): %d\n",
		r.StaticSig, r.RVecSample, r.PredictedSig)
	b.WriteString("(paper: \"we observed similar results\" to Fig 11 — prediction closer to runtime)\n")
	return b.String()
}
