package experiments

import (
	"fmt"
	"sort"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/serve"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
)

// --- serve: control-plane load test ---
//
// Every other driver runs a fixed job roster; this one exercises the
// long-running control plane (internal/serve) end to end: a scripted
// open-loop arrival process submits >1000 jobs to a Plane through its
// admission machinery — bounded queue, per-tenant quotas, cancels, a
// burst that deterministically overflows the queue — while the model
// refresh loop re-fingerprints the cluster through the LRU cache and
// the shared re-gauging controller arbitrates WAN share across
// whatever happens to be running. The whole load is substrate-clock
// scripted, so the run (and its telemetry stream) is byte-reproducible
// per seed; the wall-clock admission latencies feed the p50/p99 keys
// in BENCH_netsim.json and never appear in golden output.

func init() {
	Registry["serve"] = func(p Params) (Result, error) { return ServeLoad(p) }
}

// Load shape. Base arrivals trickle in at a sustainable rate; the
// burst packs serveBurstJobs submissions into a few simulated seconds
// mid-run to overflow the queue and trip both rejection paths.
const (
	serveDCs        = 4
	serveSlots      = 4
	serveQueueCap   = 32
	serveQuota      = 8 // per tenant, queued+running
	serveTenants    = 5
	serveBaseJobs   = 1000
	serveBurstJobs  = 100
	serveBurstAtS   = 800.0
	serveBurstGapS  = 0.05
	serveCancelEach = 50 // cancel every Nth job shortly after submit
	serveCancelLagS = 0.25
	serveRefreshS   = 120.0
	serveStartS     = 60.0
)

// ServeLoadResult summarizes a control-plane load test. String prints
// only simulated-clock quantities; the wall-clock admission latencies
// ride along (AdmitNanos) for the benchmark harness but stay out of
// golden output.
type ServeLoadResult struct {
	Scale float64

	Submitted     int
	Admitted      int
	Done          int
	Canceled      int
	Failed        int
	RejectedQueue int
	RejectedQuota int

	QueueWaitP50S float64
	QueueWaitP99S float64
	JCTP50S       float64
	JCTP99S       float64
	MakespanS     float64
	JobsPerMin    float64
	WANGB         float64
	CostUSD       float64

	Replans     int
	DriftEpochs int
	Cache       serve.CacheStats

	TelemetryLines int
	TelemetryValid bool

	// AdmitNanos are the wall-clock admission critical-path latencies,
	// in admission order — the benchmark's p50/p99 source. Wall time is
	// nondeterministic, so String ignores it.
	AdmitNanos []int64
}

// AdmitPercentiles returns the (p50, p99) wall-clock admission
// critical-path latency in nanoseconds — the BENCH_netsim.json
// serve_admit_* keys and the bench guard both read the samples through
// this one definition.
func (r ServeLoadResult) AdmitPercentiles() (p50, p99 float64) {
	ns := make([]float64, len(r.AdmitNanos))
	for i, v := range r.AdmitNanos {
		ns[i] = float64(v)
	}
	return pctlF(ns, 0.50), pctlF(ns, 0.99)
}

// String implements Result.
func (r ServeLoadResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "serve load test (scale %.2f): %d submitted over %.0fs\n",
		r.Scale, r.Submitted, r.MakespanS)
	fmt.Fprintf(&sb, "  admitted %d  done %d  canceled %d  failed %d  rejected %d (queue %d, quota %d)\n",
		r.Admitted, r.Done, r.Canceled, r.Failed,
		r.RejectedQueue+r.RejectedQuota, r.RejectedQueue, r.RejectedQuota)
	fmt.Fprintf(&sb, "  queue wait p50 %.1fs p99 %.1fs | JCT p50 %.1fs p99 %.1fs | %.1f jobs/min\n",
		r.QueueWaitP50S, r.QueueWaitP99S, r.JCTP50S, r.JCTP99S, r.JobsPerMin)
	fmt.Fprintf(&sb, "  WAN %.1f GB  cost $%.2f  replans %d  drift epochs %d\n",
		r.WANGB, r.CostUSD, r.Replans, r.DriftEpochs)
	fmt.Fprintf(&sb, "  model cache: %d hits %d misses %d evictions\n",
		r.Cache.Hits, r.Cache.Misses, r.Cache.Evictions)
	fmt.Fprintf(&sb, "  telemetry: %d lines, all valid Graphite plaintext: %v\n",
		r.TelemetryLines, r.TelemetryValid)
	return sb.String()
}

// serveSpec deterministically shapes submission i of the script.
func serveSpec(i int, rng *simrand.Source, scale float64) serve.JobSpec {
	workload := [...]string{"terasort", "wordcount", "tpcds:q78", "tpcds:q95"}[i%4]
	spec := serve.JobSpec{
		Workload: workload,
		Tenant:   fmt.Sprintf("team-%d", i%serveTenants),
		InputGB:  (2.0 + 6.0*rng.Float64()) * scale,
		Priority: float64(1 + i%3),
	}
	if i%7 == 0 {
		spec.HotDCs = []int{i % serveDCs}
		spec.HotShare = 0.7
	}
	if i%11 == 0 {
		spec.DCs = []int{0, 1, 2}
	}
	return spec
}

// ServeLoad runs the control-plane load test: ≥1000 scripted
// submissions against a live Plane on the netsim testbed.
func ServeLoad(p Params) (ServeLoadResult, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return ServeLoadResult{}, err
	}
	sim, err := testbedCluster(p, serveDCs, p.Seed)
	if err != nil {
		return ServeLoadResult{}, err
	}
	fw, err := wanify.New(wanify.Config{
		Cluster: sim, Rates: rates, Seed: p.Seed,
		Agent: agent.Config{Throttle: true},
		Runtime: rgauge.Config{
			Enabled: true, EpochS: 15, HysteresisEpochs: 2,
			CooldownS: 30, StaleAfterS: 300,
		},
	}, model)
	if err != nil {
		return ServeLoadResult{}, err
	}
	sim.RunUntil(serveStartS)

	sink := &serve.MemorySink{}
	plane, err := serve.New(fw, spark.NewEngine(sim, rates), serve.Config{
		Rates:       rates,
		Seed:        p.Seed,
		MaxRunning:  serveSlots,
		QueueCap:    serveQueueCap,
		TenantQuota: serveQuota,
		EpochS:      15,
		RefreshS:    serveRefreshS,
		Train: func(fp uint64) (*predict.Model, error) {
			// Deterministic per fingerprint, and cheap: regime models
			// retrain often enough that the paper's full forest would
			// dominate the run.
			ds, _ := dataset.Generate(dataset.GenConfig{
				Sizes: []int{3, 4}, DrawsPerSize: 2, Seed: p.Seed ^ fp,
			})
			return predict.Train(ds, predict.TrainConfig{
				Forest: rf.Config{NumTrees: 10, Seed: p.Seed ^ fp},
			})
		},
		Cache: serve.CacheConfig{Capacity: 3, TTLSeconds: 600},
		Sink:  sink,
	})
	if err != nil {
		return ServeLoadResult{}, err
	}
	if err := plane.Start(); err != nil {
		return ServeLoadResult{}, err
	}
	defer plane.Close()

	// Script the arrival process up front: base trickle plus a burst.
	rng := simrand.Derive(p.Seed, "serve-load")
	var arriveAt []float64
	t := 0.0
	for i := 0; i < serveBaseJobs; i++ {
		t += rng.Uniform(1.5, 4.5)
		arriveAt = append(arriveAt, t)
	}
	tb := serveBurstAtS
	for i := 0; i < serveBurstJobs; i++ {
		tb += serveBurstGapS
		arriveAt = append(arriveAt, tb)
	}
	lastArrival := t
	if tb > t {
		lastArrival = tb
	}

	// Schedule every submission as a substrate event. Submissions are
	// indexed in script order; job ids only exist for accepted ones.
	for i, at := range arriveAt {
		i := i
		spec := serveSpec(i, rng.Derive(fmt.Sprintf("spec-%d", i)), p.Scale)
		sim.After(at, func(float64) {
			st, err := plane.Submit(spec)
			if err != nil {
				return // rejections are counted by the plane
			}
			if (i+1)%serveCancelEach == 0 {
				sim.After(serveCancelLagS, func(float64) {
					// Races with completion by design; losing is fine.
					_, _ = plane.Cancel(st.ID)
				})
			}
		})
	}

	// Run through the arrival window, then drain.
	sim.RunUntil(sim.Now() + lastArrival + 1)
	if err := plane.DriveUntilIdle(5, 100000); err != nil {
		return ServeLoadResult{}, err
	}
	sim.RunFor(16) // one last telemetry epoch after the dust settles

	// Harvest.
	st := plane.Stats()
	res := ServeLoadResult{
		Scale:         p.Scale,
		Submitted:     st.Submitted,
		Admitted:      st.Admitted,
		Done:          st.Done,
		Canceled:      st.Canceled,
		Failed:        st.Failed,
		RejectedQueue: st.RejectedQueue,
		RejectedQuota: st.RejectedQuota,
		Cache:         plane.Cache().Stats(),
		AdmitNanos:    plane.AdmitNanos(),
	}
	var waits, jcts []float64
	firstSubmit, lastFinish := -1.0, 0.0
	for _, js := range plane.Jobs() {
		if firstSubmit < 0 || js.SubmittedAt < firstSubmit {
			firstSubmit = js.SubmittedAt
		}
		if js.FinishedAt > lastFinish {
			lastFinish = js.FinishedAt
		}
		if js.State == "done" || js.State == "canceled" {
			if js.StartedAt > 0 {
				waits = append(waits, js.QueueWaitS)
			}
		}
		if js.State == "done" {
			jcts = append(jcts, js.JCTSeconds)
			res.WANGB += js.WANGB
			res.CostUSD += js.CostUSD
		}
	}
	res.QueueWaitP50S, res.QueueWaitP99S = pctlF(waits, 0.50), pctlF(waits, 0.99)
	res.JCTP50S, res.JCTP99S = pctlF(jcts, 0.50), pctlF(jcts, 0.99)
	if lastFinish > firstSubmit && firstSubmit >= 0 {
		res.MakespanS = lastFinish - firstSubmit
		res.JobsPerMin = float64(res.Done) / (res.MakespanS / 60)
	}
	if c := fw.Controller(); c != nil {
		res.Replans = c.Replans()
		res.DriftEpochs = c.DriftEpochs()
	}
	lines := sink.Lines()
	res.TelemetryLines = len(lines)
	res.TelemetryValid = len(lines) > 0
	for _, l := range lines {
		if !serve.ValidLine(l.String()) {
			res.TelemetryValid = false
			break
		}
	}
	return res, nil
}

// pctlF returns the q-quantile of samples by nearest rank, 0 if empty.
func pctlF(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}
