package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

// TestGoldenDegradeOutputs locks the degrade driver byte for byte in
// its own per-seed golden files, and asserts the contract the scenario
// exists to prove: the failure-aware controller's JCT strictly beats
// the poisoned naive replan on every seed, the naive run swaps plans
// built on the blackout snapshot, and the hardened run rejects those
// snapshots and opens its breaker instead. Regenerate deliberately with
// `go test -run TestGoldenDegradeOutputs -update`.
func TestGoldenDegradeOutputs(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			res, err := Degrade(Params{Seed: seed, Scale: goldenScale})
			if err != nil {
				t.Fatalf("degrade: %v", err)
			}
			clean, naive, hardened := res.Rows[0], res.Rows[1], res.Rows[2]
			if hardened.JCTSeconds >= naive.JCTSeconds {
				t.Errorf("hardened JCT %.1fs does not beat naive %.1fs",
					hardened.JCTSeconds, naive.JCTSeconds)
			}
			if hardened.JCTSeconds < clean.JCTSeconds {
				t.Errorf("hardened JCT %.1fs beats the no-fault run %.1fs — scenario is not exercising the faults",
					hardened.JCTSeconds, clean.JCTSeconds)
			}
			if hardened.Rejected == 0 {
				t.Error("hardened variant rejected no snapshots under the blackout")
			}
			if naive.Rejected != 0 || clean.Rejected != 0 {
				t.Errorf("legacy variants rejected snapshots (clean=%d naive=%d)",
					clean.Rejected, naive.Rejected)
			}
			var breakerOpened bool
			for _, in := range hardened.Incidents {
				if strings.Contains(in, "breaker-open") {
					breakerOpened = true
				}
			}
			if !breakerOpened {
				t.Error("hardened variant never opened its circuit breaker")
			}

			got := fmt.Sprintf("=== degrade ===\n%s\n", res)
			path := filepath.Join("testdata", fmt.Sprintf("golden_degrade_seed%d.txt", seed))
			if *updateGolden {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				dumpGoldenDiff(t, filepath.Base(path), got, string(want))
				t.Errorf("degrade output diverged from golden file %s;\nfirst divergence near byte %d",
					path, firstDiff(got, string(want)))
			}
		})
	}
}

// chaosRegaugeConfig is the hardened controller the re-gauging soak
// runs under: staleness forces snapshots into the fault window, and the
// explicit MinCoverage is the bound the soak asserts against.
const chaosRegaugeMinCoverage = 0.6

func chaosRegaugeConfig() rgauge.Config {
	return rgauge.Config{
		Enabled:          true,
		EpochS:           15,
		HysteresisEpochs: 2,
		CooldownS:        30,
		StaleAfterS:      30,
		Hardened:         true,
		MinCoverage:      chaosRegaugeMinCoverage,
	}
}

// TestChaosRegaugeSoak runs the hardened re-gauging controller under
// the randomized chaos schedules with spark recovery enabled and
// asserts the degraded-mode invariant end to end: no drift or staleness
// plan swap ever consumes a snapshot below the coverage threshold (an
// Unmeasurable-majority snapshot is far below it), and every refusal is
// recorded as a degraded incident with its failing coverage. Evacuation
// swaps are the one sanctioned exception — a confirmed-dead DC is
// routed around whatever the snapshot looked like.
func TestChaosRegaugeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos re-gauge soak skipped in -short")
	}
	const seeds = 8
	for seed := uint64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			model, err := sharedModel(Params{Seed: seed, Scale: goldenScale}.withDefaults())
			if err != nil {
				t.Fatalf("model: %v", err)
			}
			cfg := netsim.UniformCluster(geo.TestbedSubset(chaosDCs), substrate.T2Medium, seed)
			for i := range cfg.VMs {
				for len(cfg.VMs[i]) < chaosVMsPerDC {
					cfg.VMs[i] = append(cfg.VMs[i], substrate.T2Medium)
				}
			}
			sim := netsim.NewSim(cfg)
			rng := simrand.Derive(seed, "chaos-schedule")
			schedule := chaosSchedule(rng, sim)
			schedule.Apply(sim)

			fw, err := wanify.New(wanify.Config{
				Cluster: sim, Rates: rates, Seed: seed,
				Agent:   agent.Config{Throttle: true},
				Runtime: chaosRegaugeConfig(),
			}, model)
			if err != nil {
				t.Fatalf("framework: %v", err)
			}
			sim.RunUntil(chaosStart - 1)
			pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
			defer fw.StopAgents()

			job := workloads.TeraSort(workloads.UniformInput(chaosDCs, 240e9*goldenScale))
			eng := spark.NewEngine(sim, rates)
			eng.Recovery = spark.RecoveryConfig{Enabled: true}
			sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
			if _, err := eng.RunJob(job, sched, policy); err != nil {
				// Some schedules legitimately kill the job (e.g. a
				// whole DC dies); the soak's subject is the controller,
				// which must have upheld its invariant regardless.
				t.Logf("job under schedule %s: %v", schedule, err)
			}

			ctl := fw.Controller()
			if ctl == nil {
				t.Fatal("no controller on a runtime-enabled framework")
			}
			for _, ev := range ctl.Events() {
				if ev.Reason != rgauge.ReasonEvacuate && ev.Coverage < chaosRegaugeMinCoverage {
					t.Errorf("plan swap consumed a below-threshold snapshot: %s (coverage %.2f)",
						ev, ev.Coverage)
				}
			}
			for _, in := range ctl.Incidents() {
				if in.Reason == rgauge.ReasonDegraded && in.Coverage >= chaosRegaugeMinCoverage {
					t.Errorf("degraded incident recorded at passing coverage: %s", in)
				}
			}
			if ctl.Replans()+len(ctl.Incidents()) == 0 {
				t.Error("soak ran no re-gauge at all — staleness config is not exercising the controller")
			}
		})
	}
}
