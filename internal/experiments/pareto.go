package experiments

import (
	"fmt"
	"strings"

	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// --- Pareto: multi-objective scheduler sweep ---
//
// The pluggable Scorer interface makes the descent objective a free
// variable; this driver sweeps it. Every variant runs the same TeraSort
// on a fresh copy of the 8-DC testbed with oracle beliefs (so the sweep
// isolates the objective, not the belief pipeline) and reports the
// three objectives every scorer trades between: job completion time,
// dollars, and kilograms of CO2-equivalent. Rows no other row beats on
// all three axes at once form the Pareto frontier.

func init() {
	Registry["pareto"] = func(p Params) (Result, error) { return Pareto(p) }
}

// paretoVariants are the swept -sched specs: the classic composed
// schedulers, the single-objective scorers, and blend weights walking
// the JCT-vs-cost and JCT-vs-carbon edges plus the balanced interior
// point. Specs parse through the same gda.ParseScorer registry as
// wanify-sim's -sched flag.
var paretoVariants = []string{
	"locality",
	"iridium",
	"tetrium",
	"kimchi",
	"cost",
	"carbon",
	"blend:jct=0.75,cost=0.25",
	"blend:jct=0.5,cost=0.5",
	"blend:jct=0.25,cost=0.75",
	"blend:jct=0.75,carbon=0.25",
	"blend:jct=0.5,carbon=0.5",
	"blend:jct=0.25,carbon=0.75",
	"blend:jct=0.34,cost=0.33,carbon=0.33",
}

// ParetoRow is one scheduler variant's objective vector.
type ParetoRow struct {
	Sched    string
	JCT      float64 // seconds
	USD      float64 // itemized run cost, dollars
	KgCO2    float64 // compute + WAN energy, kgCO2e
	Frontier bool    // no other row weakly dominates this one
}

// ParetoResult holds the sweep.
type ParetoResult struct {
	Rows    []ParetoRow
	InputGB float64
}

// Pareto sweeps the descent objective over paretoVariants: each variant
// places the same TeraSort on a fresh testbed copy (identical weather —
// link draws depend only on elapsed time) under oracle beliefs and
// uniform 8-connection pairs, then the objective vectors are marked for
// Pareto dominance.
func Pareto(p Params) (*ParetoResult, error) {
	p = p.withDefaults()
	input := workloads.UniformInput(8, 100e9*p.Scale)
	res := &ParetoResult{InputGB: 100 * p.Scale}
	for _, spec := range paretoVariants {
		sim, err := testbedCluster(p, 8, p.Seed)
		if err != nil {
			return nil, err
		}
		ns, ok := sim.(*netsim.Sim)
		if !ok {
			return nil, fmt.Errorf("pareto: oracle beliefs need the netsim backend, not %s", p.Backend)
		}
		sim.RunUntil(queryStart - 1)
		believed := oracleBelief(ns)
		info := gda.NewClusterInfo(sim, rates)
		sched, err := paretoSched(spec, believed, info)
		if err != nil {
			return nil, fmt.Errorf("pareto %s: %w", spec, err)
		}
		eng := spark.NewEngine(sim, rates)
		run, err := eng.RunJob(workloads.TeraSort(input), sched, spark.UniformConn{K: 8})
		if err != nil {
			return nil, fmt.Errorf("pareto %s: %w", spec, err)
		}
		res.Rows = append(res.Rows, ParetoRow{
			Sched: spec,
			JCT:   run.JCTSeconds,
			USD:   run.Cost.Total(),
			KgCO2: run.Energy.KgCO2(),
		})
	}
	markFrontier(res.Rows)
	return res, nil
}

// paretoSched resolves a swept spec: the classic composed schedulers by
// name, everything else through the scorer registry — the same
// resolution order as wanify-sim's -sched flag.
func paretoSched(spec string, believed bwmatrix.Matrix, info gda.ClusterInfo) (spark.Scheduler, error) {
	switch spec {
	case "locality":
		return gda.Locality{}, nil
	case "iridium":
		return gda.Iridium{Believed: believed, Info: info}, nil
	case "tetrium", "kimchi":
		return schedFor(spec, spec, believed, info), nil
	}
	sc, err := gda.ParseScorer(spec)
	if err != nil {
		return nil, err
	}
	return gda.Sched{Scorer: sc, Believed: believed, Info: info}, nil
}

// markFrontier flags the non-dominated rows: row i is on the frontier
// unless some row j is no worse on all three objectives and strictly
// better on at least one.
func markFrontier(rows []ParetoRow) {
	for i := range rows {
		rows[i].Frontier = true
		for j := range rows {
			if i == j {
				continue
			}
			a, b := rows[j], rows[i]
			if a.JCT <= b.JCT && a.USD <= b.USD && a.KgCO2 <= b.KgCO2 &&
				(a.JCT < b.JCT || a.USD < b.USD || a.KgCO2 < b.KgCO2) {
				rows[i].Frontier = false
				break
			}
		}
	}
}

// String renders the JCT-vs-$-vs-kgCO2 frontier table.
func (r *ParetoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pareto: descent-objective sweep on TeraSort (%.0f GB), 8-DC testbed, oracle beliefs\n", r.InputGB)
	fmt.Fprintf(&b, "%-40s%10s%10s%10s  %s\n", "scheduler", "JCT(s)", "cost($)", "kgCO2e", "frontier")
	for _, row := range r.Rows {
		mark := ""
		if row.Frontier {
			mark = "*"
		}
		fmt.Fprintf(&b, "%-40s%10.1f%10.3f%10.3f  %s\n", row.Sched, row.JCT, row.USD, row.KgCO2, mark)
	}
	b.WriteString("(* = no other variant is at least as good on all of JCT, dollars and carbon)\n")
	return b.String()
}
