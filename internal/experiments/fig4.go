package experiments

import (
	"fmt"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// --- Fig. 4: WAN-aware ML with gradient quantization ---

// Fig4Row is one quantization variant's outcome.
type Fig4Row struct {
	Variant   string
	TrainMin  float64
	CostUSD   float64
	MinBWMbps float64
	Bits      []int
}

// Fig4Result compares NoQ / SAGQ / SimQ / PredQ / WQ.
type Fig4Result struct{ Rows []Fig4Row }

// Fig4 trains the §5.6 model for 10 epochs under the five variants:
// no quantization, quantization driven by static-independent BWs
// (SAGQ), by simultaneous BWs (SimQ), by predicted BWs (PredQ), and
// WANify-enabled quantization with heterogeneous parallel connections
// (WQ).
func Fig4(p Params) (*Fig4Result, error) {
	p = p.withDefaults()
	model, err := sharedModel(p)
	if err != nil {
		return nil, err
	}
	cfg := workloads.DefaultMLConfig()
	res := &Fig4Result{}

	type variant struct {
		name    string
		belief  beliefKind
		noQuant bool
		wanify  bool
	}
	variants := []variant{
		{name: "NoQ", noQuant: true},
		{name: "SAGQ", belief: beliefStaticIndependent},
		{name: "SimQ", belief: beliefStaticSimultaneous},
		{name: "PredQ", belief: beliefPredicted},
		{name: "WQ", belief: beliefPredicted, wanify: true},
	}
	for _, v := range variants {
		sim, err := testbedCluster(p, 8, p.Seed+404)
		if err != nil {
			return nil, err
		}
		var believed bwmatrix.Matrix
		if !v.noQuant {
			b, err := obtainBelief(sim, v.belief, model, p.Seed)
			if err != nil {
				return nil, err
			}
			believed = b
		} else {
			sim.RunUntil(queryStart)
		}

		policy := spark.ConnPolicy(spark.SingleConn{})
		if v.wanify {
			fw, err := wanify.New(wanify.Config{
				Cluster: sim, Rates: rates, Seed: p.Seed,
				Agent: agent.Config{Throttle: true},
			}, model)
			if err != nil {
				return nil, err
			}
			plan := fw.Optimize(believed, wanify.OptimizeOptions{})
			fw.DeployAgents(believed, plan)
			defer fw.StopAgents()
			policy = fw.ConnPolicy()
		}

		run, err := workloads.RunQuantizedTraining(sim, rates, believed, policy, cfg)
		if err != nil {
			return nil, fmt.Errorf("fig4 %s: %w", v.name, err)
		}
		res.Rows = append(res.Rows, Fig4Row{
			Variant:   v.name,
			TrainMin:  run.TrainSeconds / 60,
			CostUSD:   run.Cost.Total(),
			MinBWMbps: run.MinLinkMbps,
			Bits:      run.BitsPerDC,
		})
	}
	return res, nil
}

// String renders Fig. 4.
func (r *Fig4Result) String() string {
	var b strings.Builder
	b.WriteString("Fig 4: WAN-aware ML with gradient quantization (10 epochs, 8 DCs)\n")
	fmt.Fprintf(&b, "%-8s%14s%12s%14s  %s\n", "variant", "train(min)", "cost($)", "min BW(Mbps)", "bits per DC")
	var noq, sagq float64
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-8s%14.1f%12.3f%14.0f  %v\n", row.Variant, row.TrainMin, row.CostUSD, row.MinBWMbps, row.Bits)
		switch row.Variant {
		case "NoQ":
			noq = row.TrainMin
		case "SAGQ":
			sagq = row.TrainMin
		}
	}
	if noq > 0 && sagq > 0 {
		fmt.Fprintf(&b, "SAGQ vs NoQ: %.1f%% faster (paper ~22%%)\n", (noq-sagq)/noq*100)
	}
	for _, row := range r.Rows {
		if row.Variant == "WQ" && sagq > 0 {
			fmt.Fprintf(&b, "WQ vs SAGQ: %.1f%% faster (paper ~26%%)\n", (sagq-row.TrainMin)/sagq*100)
		}
	}
	return b.String()
}
