// Package stats provides the small statistical toolkit used across the
// WANify reproduction: means, standard deviations, Pearson correlation
// (the paper's §2.2 snapshot/stable correlation check), RMSE/R² for the
// prediction model, and simple histogram bucketing for the table
// experiments.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice. The
// incremental form avoids intermediate-sum overflow for extreme inputs.
func Mean(xs []float64) float64 {
	m := 0.0
	for i, x := range xs {
		m += (x - m) / float64(i+1)
	}
	return m
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Pearson returns the Pearson correlation coefficient between xs and ys.
// It returns 0 when the slices differ in length, are shorter than 2, or
// either side has zero variance. The computation is scale-invariant
// (deviations are normalized by their largest magnitude first), so it
// does not overflow even for inputs near math.MaxFloat64.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	// Pre-scale both series by their largest magnitude: correlation is
	// scale-invariant, and working in [-1, 1] makes every intermediate
	// value overflow-free.
	var maxX, maxY float64
	for i := range xs {
		if v := math.Abs(xs[i]); v > maxX {
			maxX = v
		}
		if v := math.Abs(ys[i]); v > maxY {
			maxY = v
		}
	}
	if maxX == 0 || maxY == 0 {
		return 0
	}
	sx := make([]float64, len(xs))
	sy := make([]float64, len(ys))
	for i := range xs {
		sx[i] = xs[i] / maxX
		sy[i] = ys[i] / maxY
	}
	mx, my := Mean(sx), Mean(sy)
	var sxy, sxx, syy float64
	for i := range sx {
		dx, dy := sx[i]-mx, sy[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// RMSE returns the root-mean-square error between predictions and labels.
func RMSE(pred, label []float64) float64 {
	if len(pred) != len(label) || len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		d := pred[i] - label[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(pred)))
}

// MAE returns the mean absolute error between predictions and labels.
func MAE(pred, label []float64) float64 {
	if len(pred) != len(label) || len(pred) == 0 {
		return 0
	}
	s := 0.0
	for i := range pred {
		s += math.Abs(pred[i] - label[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination of predictions against
// labels. A perfect model scores 1; predicting the label mean scores 0.
func R2(pred, label []float64) float64 {
	if len(pred) != len(label) || len(pred) < 2 {
		return 0
	}
	m := Mean(label)
	var ssRes, ssTot float64
	for i := range pred {
		d := label[i] - pred[i]
		ssRes += d * d
		t := label[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using
// linear interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if p <= 0 {
		return cp[0]
	}
	if p >= 100 {
		return cp[len(cp)-1]
	}
	rank := p / 100 * float64(len(cp)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return cp[lo]
	}
	frac := rank - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Bucket describes a half-open numeric interval (Lo, Hi]. A Hi of
// +Inf describes an unbounded "greater than Lo" bucket.
type Bucket struct {
	Lo, Hi float64
	Count  int
}

// BucketCounts counts how many values fall into each (lo, hi] interval
// defined by the given boundaries. boundaries must be ascending; the
// final bucket is (boundaries[len-1], +Inf). Values at or below
// boundaries[0] are not counted, matching the paper's Table 1 which only
// reports differences above the 100 Mbps significance threshold.
func BucketCounts(values []float64, boundaries []float64) []Bucket {
	n := len(boundaries)
	if n == 0 {
		return nil
	}
	buckets := make([]Bucket, n)
	for i := 0; i < n-1; i++ {
		buckets[i] = Bucket{Lo: boundaries[i], Hi: boundaries[i+1]}
	}
	buckets[n-1] = Bucket{Lo: boundaries[n-1], Hi: math.Inf(1)}
	for _, v := range values {
		for i := range buckets {
			if v > buckets[i].Lo && v <= buckets[i].Hi {
				buckets[i].Count++
				break
			}
		}
	}
	return buckets
}
