package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// TestMeanVarianceStdDev checks the basic moments on hand-computed
// values and degenerate inputs.
func TestMeanVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5) {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := Variance(xs); !almost(v, 4) {
		t.Errorf("variance = %v, want 4", v)
	}
	if s := StdDev(xs); !almost(s, 2) {
		t.Errorf("sd = %v, want 2", s)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Error("degenerate inputs should yield 0")
	}
}

// TestMinMaxSum checks the extrema helpers.
func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 9 {
		t.Errorf("min/max/sum = %v/%v/%v", Min(xs), Max(xs), Sum(xs))
	}
	if Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty min/max should be 0")
	}
}

// TestPearsonKnown checks perfect correlation, anti-correlation and
// independence cases.
func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if r := Pearson(x, y); !almost(r, 1) {
		t.Errorf("perfect correlation r = %v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(x, neg); !almost(r, -1) {
		t.Errorf("perfect anti-correlation r = %v", r)
	}
	flat := []float64{5, 5, 5, 5, 5}
	if r := Pearson(x, flat); r != 0 {
		t.Errorf("zero-variance r = %v, want 0", r)
	}
	if r := Pearson(x, x[:3]); r != 0 {
		t.Errorf("length mismatch r = %v, want 0", r)
	}
}

// TestPearsonBounds property-checks |r| <= 1.
func TestPearsonBounds(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) < 4 {
			return true
		}
		for _, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		half := len(xs) / 2
		r := Pearson(xs[:half], xs[half:half*2])
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRMSEAndMAE checks error metrics.
func TestRMSEAndMAE(t *testing.T) {
	pred := []float64{1, 2, 3}
	label := []float64{1, 2, 7}
	if r := RMSE(pred, label); !almost(r, math.Sqrt(16.0/3)) {
		t.Errorf("rmse = %v", r)
	}
	if m := MAE(pred, label); !almost(m, 4.0/3) {
		t.Errorf("mae = %v", m)
	}
	if RMSE(pred, label[:2]) != 0 {
		t.Error("mismatched RMSE should be 0")
	}
}

// TestR2 checks the determination coefficient: 1 for perfect
// prediction, 0 for predicting the mean.
func TestR2(t *testing.T) {
	label := []float64{1, 2, 3, 4}
	if r := R2(label, label); !almost(r, 1) {
		t.Errorf("perfect R2 = %v", r)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if r := R2(mean, label); !almost(r, 0) {
		t.Errorf("mean-predictor R2 = %v", r)
	}
}

// TestPercentile checks interpolation and bounds.
func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want) {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
	// Input must not be mutated (Percentile sorts a copy).
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 || orig[1] != 1 || orig[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

// TestBucketCounts checks the Table 1 bucketing semantics: half-open
// intervals, values at or below the first boundary not counted.
func TestBucketCounts(t *testing.T) {
	values := []float64{50, 100, 101, 150, 200, 201, 250, 251, 999}
	buckets := BucketCounts(values, []float64{100, 200, 250})
	if len(buckets) != 3 {
		t.Fatalf("bucket count %d", len(buckets))
	}
	// (100,200]: 101, 150, 200 -> 3. (200,250]: 201, 250 -> 2. >250: 251, 999 -> 2.
	want := []int{3, 2, 2}
	for i, w := range want {
		if buckets[i].Count != w {
			t.Errorf("bucket %d count = %d, want %d", i, buckets[i].Count, w)
		}
	}
	if BucketCounts(values, nil) != nil {
		t.Error("no boundaries should yield nil")
	}
}

// TestBucketTotalNeverExceedsInput property-checks that every value
// lands in at most one bucket.
func TestBucketTotalNeverExceedsInput(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Abs(v))
			}
		}
		buckets := BucketCounts(vals, []float64{1, 10, 100})
		total := 0
		for _, b := range buckets {
			total += b.Count
		}
		return total <= len(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
