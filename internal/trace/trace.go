// Package trace records per-DC-pair bandwidth time series from a
// running simulation and exports them as CSV — the raw material for
// regenerating the paper's time-series figures (Fig. 9's epoch series)
// or inspecting an experiment's network behaviour offline.
//
// A Recorder samples sim.PairRate for every ordered DC pair on a fixed
// cadence. Sampling runs inside the simulated timeline (an Every
// timer), so recordings are deterministic per seed and add no wall-time
// cost beyond the samples themselves.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/wanify/wanify/internal/substrate"
)

// Sample is one instant's pairwise rate snapshot.
type Sample struct {
	// Now is the simulated time of the sample in seconds.
	Now float64
	// RateMbps[i][j] is the aggregate rate from DC i to DC j.
	RateMbps [][]float64
}

// Recorder samples a simulation's pairwise rates.
type Recorder struct {
	sim     substrate.Cluster
	samples []Sample
	cancel  func()
	closed  bool
}

// NewRecorder starts recording every intervalS seconds.
func NewRecorder(sim substrate.Cluster, intervalS float64) *Recorder {
	if intervalS <= 0 {
		intervalS = 1
	}
	r := &Recorder{sim: sim}
	r.cancel = sim.Every(intervalS, func(now float64) {
		n := sim.NumDCs()
		rates := make([][]float64, n)
		for i := 0; i < n; i++ {
			rates[i] = make([]float64, n)
			for j := 0; j < n; j++ {
				if i != j {
					rates[i][j] = sim.PairRate(i, j)
				}
			}
		}
		r.samples = append(r.samples, Sample{Now: now, RateMbps: rates})
	})
	return r
}

// Close stops sampling. The recorded samples remain readable.
func (r *Recorder) Close() {
	if !r.closed {
		r.closed = true
		r.cancel()
	}
}

// Samples returns the recorded series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Len returns the number of samples taken.
func (r *Recorder) Len() int { return len(r.samples) }

// PairSeries extracts one pair's rate series.
func (r *Recorder) PairSeries(src, dst int) (times, rates []float64) {
	for _, s := range r.samples {
		times = append(times, s.Now)
		rates = append(rates, s.RateMbps[src][dst])
	}
	return times, rates
}

// WriteCSV writes the recording in long form: one row per
// (time, src, dst) with the region names resolved. Idle pairs are
// skipped when skipZeros is true, which keeps shuffle recordings
// compact.
func (r *Recorder) WriteCSV(w io.Writer, skipZeros bool) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "src", "dst", "rate_mbps"}); err != nil {
		return err
	}
	regions := r.sim.Regions()
	for _, s := range r.samples {
		for i := range s.RateMbps {
			for j := range s.RateMbps[i] {
				if i == j {
					continue
				}
				v := s.RateMbps[i][j]
				if skipZeros && v == 0 {
					continue
				}
				rec := []string{
					strconv.FormatFloat(s.Now, 'f', 3, 64),
					regions[i].Name,
					regions[j].Name,
					strconv.FormatFloat(v, 'f', 1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}
