package trace

import (
	"bytes"
	"strings"
	"testing"

	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/substrate"
)

func frozenSim(n int, seed uint64) *netsim.Sim {
	cfg := netsim.UniformCluster(geo.TestbedSubset(n), substrate.T2Medium, seed)
	cfg.Frozen = true
	return netsim.NewSim(cfg)
}

// TestRecorderSamplesRates checks cadence and values.
func TestRecorderSamplesRates(t *testing.T) {
	sim := frozenSim(3, 1)
	rec := NewRecorder(sim, 1.0)
	f := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 1)
	sim.RunFor(5.5)
	rec.Close()
	if rec.Len() != 5 {
		t.Fatalf("%d samples over 5.5s at 1 Hz, want 5", rec.Len())
	}
	_, rates := rec.PairSeries(0, 1)
	if rates[len(rates)-1] <= 0 {
		t.Error("active pair recorded as idle")
	}
	_, idle := rec.PairSeries(1, 2)
	for _, v := range idle {
		if v != 0 {
			t.Errorf("idle pair recorded rate %v", v)
		}
	}
	f.Stop()
}

// TestRecorderStopsAfterClose checks Close halts sampling.
func TestRecorderStopsAfterClose(t *testing.T) {
	sim := frozenSim(2, 2)
	rec := NewRecorder(sim, 1.0)
	sim.RunFor(3.5)
	rec.Close()
	n := rec.Len()
	sim.RunFor(3)
	if rec.Len() != n {
		t.Errorf("recorder kept sampling after Close: %d -> %d", n, rec.Len())
	}
}

// TestWriteCSV checks the export format.
func TestWriteCSV(t *testing.T) {
	sim := frozenSim(3, 3)
	rec := NewRecorder(sim, 1.0)
	f := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(2), 2)
	sim.RunFor(3.2)
	rec.Close()
	f.Stop()

	var buf bytes.Buffer
	if err := rec.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if lines[0] != "time_s,src,dst,rate_mbps" {
		t.Errorf("header = %q", lines[0])
	}
	// 3 samples of one active pair with zeros skipped.
	if len(lines) != 4 {
		t.Errorf("%d lines, want 4 (header + 3 samples)", len(lines))
	}
	if !strings.Contains(out, "US East,AP South") {
		t.Errorf("region names missing:\n%s", out)
	}

	// With zeros kept, every ordered pair appears.
	buf.Reset()
	if err := rec.WriteCSV(&buf, false); err != nil {
		t.Fatal(err)
	}
	all := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if want := 1 + 3*6; len(all) != want {
		t.Errorf("%d lines with zeros, want %d", len(all), want)
	}
}

// TestRecorderDeterminism checks same-seed recordings agree.
func TestRecorderDeterminism(t *testing.T) {
	run := func() []Sample {
		cfg := netsim.UniformCluster(geo.TestbedSubset(3), substrate.T2Medium, 9)
		sim := netsim.NewSim(cfg) // weather on
		rec := NewRecorder(sim, 1.0)
		f := sim.StartProbe(sim.FirstVMOfDC(0), sim.FirstVMOfDC(1), 2)
		sim.RunFor(10)
		rec.Close()
		f.Stop()
		return rec.Samples()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sample counts differ")
	}
	for k := range a {
		if a[k].RateMbps[0][1] != b[k].RateMbps[0][1] {
			t.Fatalf("sample %d differs: %v vs %v", k, a[k].RateMbps[0][1], b[k].RateMbps[0][1])
		}
	}
}
