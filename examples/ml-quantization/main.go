// Geo-distributed ML with bandwidth-driven gradient quantization — the
// paper's §5.6 / Fig. 4 scenario.
//
// Eight regions train a model synchronously against a parameter server
// in US East. A quantization policy (SAGQ) picks the gradient precision
// per link from the bandwidth it believes the link has. The example
// compares all five of the paper's variants:
//
//	NoQ   — no quantization (32-bit everywhere)
//	SAGQ  — precision from static-independent iPerf bandwidths
//	SimQ  — precision from simultaneous (contended) measurements
//	PredQ — precision from WANify's predicted runtime bandwidths
//	WQ    — PredQ plus WANify's heterogeneous parallel connections
//
//	go run ./examples/ml-quantization
package main

import (
	"fmt"
	"log"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

const (
	seed       = 404
	trainStart = 700.0
)

func main() {
	rates := cost.DefaultRates()
	model, _, err := wanify.QuickModel(seed)
	if err != nil {
		log.Fatal(err)
	}
	cfg := workloads.DefaultMLConfig()

	fmt.Printf("synchronous training: %d epochs, %.0f MB gradients, parameter server in %s\n\n",
		cfg.Epochs, cfg.ModelBytes/1e6, geo.USEast.Name)
	fmt.Printf("%-8s%14s%12s%14s  %s\n", "variant", "train(min)", "cost($)", "min BW(Mbps)", "bits per worker link")

	type variant struct {
		name   string
		belief string // "", "static", "simultaneous", "predicted"
		wanify bool
	}
	for _, v := range []variant{
		{"NoQ", "", false},
		{"SAGQ", "static", false},
		{"SimQ", "simultaneous", false},
		{"PredQ", "predicted", false},
		{"WQ", "predicted", true},
	} {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		var believed bwmatrix.Matrix
		switch v.belief {
		case "static":
			believed, _ = measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
			sim.RunUntil(trainStart)
		case "simultaneous":
			sim.RunUntil(trainStart - 20)
			believed, _ = measure.StaticSimultaneous(sim, measure.StableOptions())
		case "predicted":
			fw, err := wanify.New(wanify.Config{Cluster: sim, Rates: rates, Seed: seed}, model)
			if err != nil {
				log.Fatal(err)
			}
			sim.RunUntil(trainStart - 1)
			believed, _ = fw.DetermineRuntimeBW()
		default:
			sim.RunUntil(trainStart)
		}

		policy := spark.ConnPolicy(spark.SingleConn{})
		if v.wanify {
			fw, err := wanify.New(wanify.Config{
				Cluster: sim, Rates: rates, Seed: seed,
				Agent: agent.Config{Throttle: true},
			}, model)
			if err != nil {
				log.Fatal(err)
			}
			plan := fw.Optimize(believed, wanify.OptimizeOptions{})
			fw.DeployAgents(believed, plan)
			defer fw.StopAgents()
			policy = fw.ConnPolicy()
		}

		res, err := workloads.RunQuantizedTraining(sim, rates, believed, policy, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s%14.1f%12.3f%14.0f  %v\n",
			v.name, res.TrainSeconds/60, res.Cost.Total(), res.MinLinkMbps, res.BitsPerDC)
	}

	fmt.Println("\npaper: SAGQ ~22% faster than NoQ; accurate (simultaneous/predicted)")
	fmt.Println("beliefs add 13-14.5%; WANify-enabled WQ is best with a 2x min-BW boost.")
}
