// TPC-DS on Tetrium: how bandwidth beliefs change a WAN-aware
// scheduler's decisions (the paper's Table 4 / Fig. 7 scenario).
//
// The same heavy query (TPC-DS 78, scaled) runs three times on
// identical network weather. Only the bandwidth matrix Tetrium plans
// with differs:
//
//   - static-independent iPerf (what Tetrium/Kimchi/Iridium really use),
//
//   - WANify's predicted runtime bandwidths, single connection,
//
//   - full WANify: predicted bandwidths plus heterogeneous
//     agent-managed parallel connections and throttling.
//
//     go run ./examples/tpcds-tetrium
package main

import (
	"fmt"
	"log"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

const (
	seed       = 7
	inputBytes = 25e9  // 25 GB (the paper runs 100 GB)
	queryStart = 700.0 // all variants launch at the same instant
)

func main() {
	rates := cost.DefaultRates()
	model, _, err := wanify.QuickModel(seed)
	if err != nil {
		log.Fatal(err)
	}
	input := workloads.UniformInput(8, inputBytes)
	job, err := workloads.TPCDS(78, input)
	if err != nil {
		log.Fatal(err)
	}

	type outcome struct {
		name  string
		jct   float64
		cost  float64
		minBW float64
	}
	var outcomes []outcome

	// Variant 1: vanilla Tetrium on static-independent beliefs.
	{
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		believed, _ := measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
		sim.RunUntil(queryStart)
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(static)", Believed: believed, Info: gda.NewClusterInfo(sim, rates)}
		res, err := eng.RunJob(job, sched, spark.SingleConn{})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{"static beliefs, 1 conn", res.JCTSeconds, res.Cost.Total(), res.MinShuffleMbps})
	}

	// Variant 2: Tetrium on predicted runtime beliefs, single conn.
	{
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		fw, err := wanify.New(wanify.Config{Cluster: sim, Rates: rates, Seed: seed}, model)
		if err != nil {
			log.Fatal(err)
		}
		sim.RunUntil(queryStart - 1)
		pred, _ := fw.DetermineRuntimeBW()
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(predicted)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		res, err := eng.RunJob(job, sched, spark.SingleConn{})
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{"predicted beliefs, 1 conn", res.JCTSeconds, res.Cost.Total(), res.MinShuffleMbps})
	}

	// Variant 3: full WANify.
	{
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		fw, err := wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: seed,
			Agent: agent.Config{Throttle: true},
		}, model)
		if err != nil {
			log.Fatal(err)
		}
		sim.RunUntil(queryStart - 1)
		pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
		defer fw.StopAgents()
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(wanify)", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		res, err := eng.RunJob(job, sched, policy)
		if err != nil {
			log.Fatal(err)
		}
		outcomes = append(outcomes, outcome{"full WANify", res.JCTSeconds, res.Cost.Total(), res.MinShuffleMbps})
	}

	fmt.Printf("TPC-DS query 78 (%.0f GB) on Tetrium, 8 AWS regions\n\n", inputBytes/1e9)
	fmt.Printf("%-28s%10s%10s%14s\n", "variant", "JCT(s)", "cost($)", "min BW(Mbps)")
	base := outcomes[0].jct
	for _, o := range outcomes {
		fmt.Printf("%-28s%10.1f%10.3f%14.0f", o.name, o.jct, o.cost, o.minBW)
		if o.jct != base {
			fmt.Printf("   (%+.1f%% vs static)", (o.jct-base)/base*100)
		}
		fmt.Println()
	}
	fmt.Println("\npaper: runtime beliefs alone are worth up to ~14% on this query;")
	fmt.Println("with heterogeneous connections the total reaches ~24% (Fig. 7).")
}
