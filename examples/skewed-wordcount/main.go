// Skewed WordCount: WANify's skew weights in action (§3.3.1, Fig. 10).
//
// HDFS blocks are concentrated on four hot regions, so the shuffle is
// dominated by traffic *leaving* those regions. The example runs the
// same job four ways on identical weather — single connection, uniform
// parallelism, WANify without skew weights, WANify with skew weights —
// and shows how the optimizer re-allocates connection budgets toward
// data-intensive sources.
//
//	go run ./examples/skewed-wordcount
package main

import (
	"fmt"
	"log"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

const (
	seed     = 11
	jobStart = 700.0
)

func main() {
	rates := cost.DefaultRates()
	model, _, err := wanify.QuickModel(seed)
	if err != nil {
		log.Fatal(err)
	}

	// 2.4 GB of all-distinct words, 95% of it on 4 hot DCs.
	input := workloads.SkewedInput(8, 2400e6, []int{0, 1, 2, 3}, 0.95)
	job := workloads.WordCount(input, 2400e6)
	ws := workloads.SkewWeights(input)
	fmt.Printf("input skew weights ws = %.2f (hot: US East/West, AP South/SE)\n\n", ws)

	run := func(name string, useAgents bool, skew []float64, policy spark.ConnPolicy) {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		fw, err := wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: seed,
			Agent: agent.Config{Throttle: true},
		}, model)
		if err != nil {
			log.Fatal(err)
		}
		sim.RunUntil(jobStart - 1)
		pred, _ := fw.DetermineRuntimeBW()
		plan := fw.Optimize(pred, wanify.OptimizeOptions{SkewWeights: skew})
		if useAgents {
			fw.DeployAgents(pred, plan)
			defer fw.StopAgents()
			policy = fw.ConnPolicy()
		}
		if skew != nil {
			fmt.Printf("  (hot-source US East max-conns row: %v)\n", plan.MaxConns[0])
		}
		eng := spark.NewEngine(sim, rates)
		sched := gda.Tetrium{Label: "tetrium(" + name + ")", Believed: pred, Info: gda.NewClusterInfo(sim, rates)}
		res, err := eng.RunJob(job, sched, policy)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s JCT %6.1f s   cost $%.3f   min BW %4.0f Mbps\n",
			name, res.JCTSeconds, res.Cost.Total(), res.MinShuffleMbps)
	}

	run("single-conn", false, nil, spark.SingleConn{})
	run("uniform-8", false, nil, spark.UniformConn{K: 8})
	run("wanify-no-skew", true, nil, nil)
	run("wanify-skew-aware", true, ws, nil)

	fmt.Println("\npaper: the skew-aware variant improves latency 7.1% over plain WANify")
	fmt.Println("and 26.5% over the single-connection baseline (Fig. 10).")
}
