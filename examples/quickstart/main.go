// Quickstart: the complete WANify loop in one file.
//
// It builds a simulated 8-region cluster, trains the offline prediction
// model, then walks the online path the paper's Fig. 3 describes —
// snapshot → predicted runtime bandwidth matrix → global optimization
// (Algorithm 1 + Eq. 2–3) → local agents with AIMD and throttling — and
// finally shows the payoff: the same TeraSort job run with and without
// WANify.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/workloads"
)

func main() {
	const seed = 42
	rates := cost.DefaultRates()

	// 1. Offline module: the Bandwidth Analyzer collects labeled
	//    monitoring sessions and trains the Random Forest (§4.1.1).
	fmt.Println("== offline: training the WAN prediction model ==")
	model, report, err := wanify.QuickModel(seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collected %d labeled pairs; train accuracy %.1f%% at the 100 Mbps threshold\n\n",
		report.Rows, report.TrainAccuracy*100)

	// 2. A fresh geo-distributed cluster: 8 AWS regions, one t2.medium
	//    worker each, with live WAN weather.
	run := func(useWANify bool) spark.RunResult {
		sim := netsim.NewSim(netsim.UniformCluster(geo.Testbed(), substrate.T2Medium, seed))
		eng := spark.NewEngine(sim, rates)
		job := workloads.TeraSort(workloads.UniformInput(8, 20e9)) // 20 GB TeraSort

		policy := spark.ConnPolicy(spark.SingleConn{})
		if useWANify {
			// 3. Online module: one call takes the snapshot, predicts
			//    runtime BWs, optimizes heterogeneous connections and
			//    deploys the per-VM agents.
			fw, err := wanify.New(wanify.Config{
				Cluster: sim, Rates: rates, Seed: seed,
				Agent: agent.Config{Throttle: true},
			}, model)
			if err != nil {
				log.Fatal(err)
			}
			pred, pol, _ := fw.Enable(wanify.OptimizeOptions{})
			defer fw.StopAgents()
			policy = pol
			fmt.Printf("predicted runtime BWs: min %.0f / max %.0f Mbps\n",
				pred.MinOffDiagonal(), pred.MaxOffDiagonal())
			plan := fw.Plan()
			fmt.Printf("heterogeneous connection windows (US East row): min %v max %v\n",
				plan.MinConns[0], plan.MaxConns[0])
		}

		res, err := eng.RunJob(job, gda.Locality{}, policy)
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	fmt.Println("== vanilla Spark: locality scheduling, single connection ==")
	vanilla := run(false)
	fmt.Printf("JCT %.1f s, cost $%.2f, min pair BW %.0f Mbps\n\n",
		vanilla.JCTSeconds, vanilla.Cost.Total(), vanilla.MinShuffleMbps)

	fmt.Println("== WANify: predicted BWs + heterogeneous connections + throttling ==")
	wan := run(true)
	fmt.Printf("JCT %.1f s, cost $%.2f, min pair BW %.0f Mbps\n\n",
		wan.JCTSeconds, wan.Cost.Total(), wan.MinShuffleMbps)

	fmt.Printf("WANify: %.1f%% lower latency, %.1fx the minimum bandwidth\n",
		(vanilla.JCTSeconds-wan.JCTSeconds)/vanilla.JCTSeconds*100,
		wan.MinShuffleMbps/vanilla.MinShuffleMbps)
}
