module github.com/wanify/wanify

go 1.23
