package wanify_test

import (
	"math"
	"testing"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/workloads"
)

// TestEnableJobSetDeploysPartitionedAgents checks the multi-tenant
// deploy path: N agent groups (one per job, one agent per VM), one
// policy per job, and per-pair windows that sum within the global plan.
func TestEnableJobSetDeploysPartitionedAgents(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1}, false)
	_, policies, _, err := fw.EnableJobSet(wanify.JobSetOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.StopAgents()
	groups := fw.JobAgents()
	if len(groups) != 2 || len(policies) != 2 {
		t.Fatalf("got %d groups, %d policies, want 2 each", len(groups), len(policies))
	}
	for g, group := range groups {
		if len(group) != sim.NumVMs() {
			t.Fatalf("job %d has %d agents for %d VMs", g, len(group), sim.NumVMs())
		}
	}
	plan := fw.Plan()
	n := sim.NumDCs()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			sum := 0
			for _, group := range groups {
				for _, a := range group {
					if a.DC() == i {
						sum += a.Conns()[j]
					}
				}
			}
			if sum > plan.MaxConns[i][j] {
				t.Errorf("pair (%d,%d): deployed job conns %d exceed the global window %d",
					i, j, sum, plan.MaxConns[i][j])
			}
		}
	}
	if fw.Controller() != nil {
		t.Error("controller started without Runtime enabled")
	}
}

// TestEnableJobSetValidates checks option validation.
func TestEnableJobSetValidates(t *testing.T) {
	fw, _ := newFramework(t, []int{1, 1, 1}, false)
	if _, _, _, err := fw.EnableJobSet(wanify.JobSetOptions{Jobs: 0}); err == nil {
		t.Error("zero jobs accepted")
	}
	if _, _, _, err := fw.EnableJobSet(wanify.JobSetOptions{
		Jobs: 2, Share: optimize.SharePriority, Priorities: []float64{1},
	}); err == nil {
		t.Error("mismatched priorities accepted")
	}
}

// TestJobSetEndToEndContention runs two TeraSorts concurrently under
// partitioned WANify agents and checks the whole stack holds together:
// both jobs finish, bytes conserve, and the per-job policies draw
// connection counts from their own windows.
func TestJobSetEndToEndContention(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1, 1}, true)
	pred, policies, _, err := fw.EnableJobSet(wanify.JobSetOptions{Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer fw.StopAgents()

	rates := cost.DefaultRates()
	eng := spark.NewEngine(sim, rates)
	info := gda.NewClusterInfo(sim, rates)
	var runs []spark.JobRun
	for g := 0; g < 2; g++ {
		job := workloads.TeraSort(workloads.UniformInput(sim.NumDCs(), 4e9))
		runs = append(runs, spark.JobRun{
			Job:    job,
			Sched:  gda.Tetrium{Believed: pred, Info: info},
			Policy: policies[g],
		})
	}
	res, err := eng.RunJobSet(runs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("got %d results", len(res.Results))
	}
	for i, r := range res.Results {
		if r.JCTSeconds <= 0 {
			t.Errorf("job %d JCT = %v", i, r.JCTSeconds)
		}
		if r.WANBytes <= 0 {
			t.Errorf("job %d moved no WAN bytes", i)
		}
		var stageBytes float64
		for _, st := range r.Stages {
			stageBytes += st.WANBytes
		}
		if math.Abs(stageBytes-r.WANBytes) > 1 {
			t.Errorf("job %d: stage bytes %v != total %v", i, stageBytes, r.WANBytes)
		}
	}
	if res.MakespanS <= 0 {
		t.Error("no makespan")
	}
}

// TestJobSetControllerArbitratesForAllJobs enables the runtime
// controller over a two-job set on a degrading network and checks a
// single controller re-gauges for both jobs.
func TestJobSetControllerArbitratesForAllJobs(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1}, false)
	// Staleness-triggered so the test does not depend on drift detail.
	fwCfg := wanify.JobSetOptions{Jobs: 2, Share: optimize.ShareFair}
	_, _, _, err := fw.EnableJobSet(fwCfg)
	if err != nil {
		t.Fatal(err)
	}
	// EnableJobSet without Runtime leaves no controller; start one by
	// hand with a staleness clock through the framework path.
	ctl := fw.StartJobSetController()
	_ = ctl
	defer fw.StopAgents()
	if fw.Controller() == nil {
		t.Fatal("no controller")
	}
	sim.RunFor(40)
	// No drift on a frozen idle cluster: zero replans, zero churn.
	if got := fw.Controller().Replans(); got != 0 {
		t.Errorf("idle frozen cluster replanned %d times", got)
	}
}

// TestStopAgentsClearsJobSetState checks a job-set deployment tears
// down cleanly and a fresh single-job Enable works afterwards.
func TestStopAgentsClearsJobSetState(t *testing.T) {
	fw, sim := newFramework(t, []int{1, 1, 1}, true)
	if _, _, _, err := fw.EnableJobSet(wanify.JobSetOptions{Jobs: 3}); err != nil {
		t.Fatal(err)
	}
	fw.StopAgents()
	if fw.JobAgents() != nil {
		t.Error("job agents survive StopAgents")
	}
	// Cluster-level throttles cleared: probes run at full speed.
	for i := 0; i < sim.NumDCs(); i++ {
		for j := 0; j < sim.NumDCs(); j++ {
			if i != j {
				sim.ClearPairLimit(i, j) // idempotent if already cleared
			}
		}
	}
	pred, policy, _ := fw.Enable(wanify.OptimizeOptions{})
	defer fw.StopAgents()
	if pred == nil || policy == nil {
		t.Fatal("single-job Enable broken after job set")
	}
	if got := len(fw.Agents()); got != sim.NumVMs() {
		t.Fatalf("single-job redeploy has %d agents for %d VMs", got, sim.NumVMs())
	}
}
