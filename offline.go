package wanify

import (
	"fmt"

	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
)

// TrainReport summarizes an offline training run (§4.1.1).
type TrainReport struct {
	// Rows is the number of labeled pairs collected.
	Rows int
	// TrainAccuracy is the fraction of held-in rows predicted within
	// the 100 Mbps significance threshold (the paper reports 98.51%).
	TrainAccuracy float64
	// TestAccuracy is the same metric on a held-out split.
	TestAccuracy float64
	// RMSE and R2 are on the held-out split.
	RMSE, R2 float64
	// FeatureImportance follows dataset.FeatureNames order.
	FeatureImportance []float64
	// Collection describes the simulated probe traffic/time spent.
	Collection measure.Report
}

// TrainOffline runs the complete offline module: the Bandwidth Analyzer
// collects labeled monitoring sessions across cluster sizes, and the
// WAN Prediction Model (Random Forest) is trained on them. The returned
// model is independent of any single cluster: it predicts for any size
// within the sampled range (§3.3.2).
func TrainOffline(gen dataset.GenConfig, tc predict.TrainConfig) (*predict.Model, TrainReport, error) {
	ds, collection := dataset.Generate(gen)
	if ds.Len() == 0 {
		return nil, TrainReport{}, fmt.Errorf("wanify: bandwidth analyzer collected no rows")
	}
	splitRng := simrand.Derive(gen.Seed, "train-test-split")
	train, test := ds.Split(0.2, splitRng)
	model, err := predict.Train(train, tc)
	if err != nil {
		return nil, TrainReport{}, err
	}
	rep := TrainReport{
		Rows:              ds.Len(),
		FeatureImportance: model.Forest().FeatureImportance(),
		Collection:        collection,
	}
	rep.TrainAccuracy, _, _ = model.Accuracy(train)
	rep.TestAccuracy, rep.RMSE, rep.R2 = model.Accuracy(test)
	return model, rep, nil
}

// QuickModel trains a small model suitable for tests and examples:
// fewer sessions and trees than the paper's full configuration, same
// pipeline. The seed controls everything.
func QuickModel(seed uint64) (*predict.Model, TrainReport, error) {
	gen := dataset.GenConfig{
		Sizes:        []int{3, 5, 8},
		DrawsPerSize: 6,
		Seed:         seed,
	}
	tc := predict.TrainConfig{Forest: rf.Config{NumTrees: 40, Seed: seed}}
	return TrainOffline(gen, tc)
}
