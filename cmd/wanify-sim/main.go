// Command wanify-sim runs a single geo-distributed analytics job on a
// WAN substrate (the simulated 8-region testbed by default, or a
// trace replay) under a chosen scheduler and connection strategy,
// printing per-stage timing and the itemized cost.
//
//	wanify-sim -job terasort -gb 100
//	wanify-sim -job tpcds-78 -sched tetrium -conns wanify
//	wanify-sim -job wordcount -mb 600 -skew -sched kimchi -conns uniform
//	wanify-sim -job terasort -backend trace:cloud4
//	wanify-sim -job terasort -conns wanify -model model.gob
//	wanify-sim -job terasort -conns wanify -jobs 3 -share remaining
//	wanify-sim -topo fleet:100x4 -sched tetrium -believe oracle -conns uniform
//
// Schedulers: locality (vanilla Spark), iridium (Pu et al.'s classic
// per-site placement), tetrium, kimchi — plus the pluggable descent
// objectives: any registered scorer name (jct, cost, carbon) or a
// weighted blend such as -sched blend:jct=0.5,cost=0.3,carbon=0.2
// (see internal/gda's Scorer). For the WAN-aware schedulers,
// -believe picks the bandwidth matrix they plan with (static,
// simultaneous, predicted). Connection strategies: single, uniform
// (8 per pair), wanify (predicted BWs + heterogeneous agent-managed
// pools + throttling). -jobs N runs N copies of the job concurrently
// over one cluster (the multi-tenant JobSet runner); with -conns
// wanify, -share picks how the global plan's windows split across the
// jobs (fair, priority, remaining). -rebalance adds the mid-job
// re-gauging controller (internal/runtime): the plan is re-measured
// and swapped into the running agents when WAN drift is detected —
// with -jobs N one controller arbitrates for the whole set. -hardened
// upgrades the controller to failure-aware gauging (probe
// retry/backoff, partial snapshots fused with the last-known-good
// belief, coverage-gated replans, circuit breaker); -probe-fail T
// injects a measurement-poisoning fault burst at time T to aim at a
// re-gauge window. -overlap
// pipelines compute into the transfer window (SDTP-style). -backend
// selects the substrate (netsim, trace, trace:<name|file>); -model
// reuses a wanify-train model so the online run skips retraining.
// -topo fleet:<dcs>x<vms> swaps the testbed for a synthetic fleet
// topology (geo.Fleet via netsim.FleetCluster) at any scale tier; on
// a fleet, pair -sched tetrium/kimchi with -believe oracle (the
// simulator's true single-connection caps — fleet runs skip model
// training and measurement probing, which do not scale to hundreds of
// DCs) and -conns single or uniform.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/bwmatrix"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/experiments"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/measure"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
	"github.com/wanify/wanify/internal/trace"
	"github.com/wanify/wanify/internal/workloads"
)

func main() {
	var (
		jobName = flag.String("job", "terasort", "terasort | wordcount | tpcds-82 | tpcds-95 | tpcds-11 | tpcds-78")
		gb      = flag.Float64("gb", 100, "input size in GB (terasort, tpcds)")
		mb      = flag.Float64("mb", 600, "input size in MB (wordcount)")
		skew    = flag.Bool("skew", false, "skew input onto 4 hot DCs (§5.8.1)")
		sched   = flag.String("sched", "locality", schedUsage)
		believe = flag.String("believe", "predicted", "static | simultaneous | predicted | oracle (for tetrium/kimchi; oracle = netsim true caps)")
		conns   = flag.String("conns", "single", "single | uniform | wanify")
		jobs    = flag.Int("jobs", 1, "run N copies of the job concurrently over one cluster (multi-tenant)")
		shareS  = flag.String("share", "fair", "with -jobs N and -conns wanify: split the global plan's windows across jobs by fair | priority | remaining (priority: job 0 ranks highest)")
		rebal   = flag.Bool("rebalance", false, "with -conns wanify: re-gauge and rebalance the plan mid-job when WAN drift is detected (with -jobs N: one shared controller arbitrates for all jobs)")
		harden  = flag.Bool("hardened", false, "with -rebalance: failure-aware gauging — probe retry/backoff, partial snapshots fused with the last-known-good belief, coverage-gated replans and a circuit breaker")
		pfailAt = flag.Float64("probe-fail", -1, "inject a measurement-poisoning burst at this simulated time (s): the first third of the DCs partition for 60 s and one healthy pair resets 1 s in; aim it at a -rebalance re-gauge window and pair with -hardened to watch the poisoned snapshot be rejected instead of replanned")
		overlap = flag.Bool("overlap", false, "pipeline compute into the transfer window (SDTP-style)")
		traceTo = flag.String("trace", "", "write a per-pair rate time series (CSV) to this file")
		backend = flag.String("backend", "netsim", "substrate backend: netsim | trace | trace:<name|file>")
		topo    = flag.String("topo", "testbed", "cluster topology: testbed | fleet:<dcs>x<vms> (synthetic fleet, netsim only)")
		modelIn = flag.String("model", "", "load a wanify-train model instead of quick-training (gob)")
		seed    = flag.Uint64("seed", 1, "simulation seed")
		killDC  = flag.Int("kill-dc", -1, "kill every VM of this DC at -kill-at (fault injection)")
		killAt  = flag.Float64("kill-at", 60, "simulated time (s) at which -kill-dc dies")
		recover = flag.Bool("recover", false, "enable fault recovery: re-replicate lost stage outputs and re-enter the transfer phase instead of aborting")
	)
	flag.Parse()

	// Validate the enumerated flags up front — before any model
	// training or cluster construction runs — so a typo fails in
	// milliseconds with the valid set, not minutes in.
	if _, err := schedFor(*sched, nil, gda.ClusterInfo{}); err != nil {
		log.Fatal(err)
	}
	switch *believe {
	case "static", "simultaneous", "predicted", "oracle":
	default:
		log.Fatalf("unknown belief %q (want static | simultaneous | predicted | oracle)", *believe)
	}
	switch *conns {
	case "single", "uniform", "wanify":
	default:
		log.Fatalf("unknown conns %q (want single | uniform | wanify)", *conns)
	}
	if *jobs < 1 {
		log.Fatalf("-jobs must be at least 1, got %d", *jobs)
	}
	if *harden && !*rebal {
		log.Fatal("-hardened configures the re-gauging controller and requires -rebalance")
	}
	share, err := optimize.ParseShareMode(*shareS)
	if err != nil {
		log.Fatal(err)
	}

	rates := cost.DefaultRates()
	be, err := experiments.ParseBackend(*backend)
	if err != nil {
		log.Fatal(err)
	}
	var sim substrate.Cluster
	if *topo == "testbed" || *topo == "" {
		sim, err = be.NewTestbed(be.NumDCs(), *seed)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var dcs, vms int
		if _, err := fmt.Sscanf(*topo, "fleet:%dx%d", &dcs, &vms); err != nil || dcs < 2 || vms < 1 {
			log.Fatalf("bad -topo %q (want testbed or fleet:<dcs>x<vms>, e.g. fleet:100x4)", *topo)
		}
		if *backend != "netsim" {
			log.Fatalf("-topo fleet requires the netsim backend, not %q", *backend)
		}
		sim = netsim.NewSim(netsim.FleetCluster(dcs, vms, substrate.T2Medium, *seed))
	}
	n := sim.NumDCs()

	// Fault injection: schedule the DC death before the run starts so
	// it fires through the substrate's own timer queue.
	if *killDC >= 0 {
		if *killDC >= n {
			log.Fatalf("-kill-dc %d out of range (backend has %d DCs)", *killDC, n)
		}
		var schedule substrate.FaultSchedule
		for _, vm := range sim.VMsOfDC(*killDC) {
			schedule = append(schedule, substrate.Fault{
				Kind: substrate.FaultKillVM, VM: vm, At: *killAt,
			})
		}
		schedule.Apply(sim)
		fmt.Printf("fault schedule: %s\n", schedule)
	}

	// Measurement-poisoning burst: partition enough DCs to drag a
	// snapshot below the hardened coverage threshold, and reset one
	// healthy pair mid-window so a probe dies in flight.
	if *pfailAt >= 0 {
		dark := n / 3
		if dark < 1 {
			dark = 1
		}
		var schedule substrate.FaultSchedule
		for dc := 1; dc <= dark; dc++ {
			schedule = append(schedule, substrate.Fault{
				Kind: substrate.FaultPartitionDC, DC: dc % n,
				At: *pfailAt, Until: *pfailAt + 60,
			})
		}
		schedule = append(schedule, substrate.Fault{
			Kind: substrate.FaultResetPair, SrcDC: (dark + 1) % n, DstDC: (dark + 2) % n,
			At: *pfailAt + 1,
		})
		schedule.Apply(sim)
		fmt.Printf("probe-fail schedule: %s\n", schedule)
	}

	// Input layout.
	var input []float64
	switch {
	case *jobName == "wordcount" && *skew:
		if n < 4 {
			log.Fatalf("-skew needs at least 4 DCs; backend %s has %d", be, n)
		}
		input = workloads.SkewedInput(n, *mb*1e6, []int{0, 1, 2, 3}, 0.95)
	case *jobName == "wordcount":
		input = workloads.UniformInput(n, *mb*1e6)
	default:
		input = workloads.UniformInput(n, *gb*1e9)
	}

	// Job.
	var job spark.Job
	switch {
	case *jobName == "terasort":
		job = workloads.TeraSort(input)
	case *jobName == "wordcount":
		job = workloads.WordCount(input, sumOf(input))
	case strings.HasPrefix(*jobName, "tpcds-"):
		var q int
		if _, err := fmt.Sscanf(*jobName, "tpcds-%d", &q); err != nil {
			log.Fatalf("bad job name %q", *jobName)
		}
		var err error
		job, err = workloads.TPCDS(q, input)
		if err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown job %q", *jobName)
	}

	// WANify framework (trained on demand) when needed.
	var fw *wanify.Framework
	needsModel := *conns == "wanify" || (*sched != "locality" && *believe == "predicted")
	if needsModel && !(*topo == "testbed" || *topo == "") {
		log.Fatal("-topo fleet does not support model-backed runs (training and runtime probing do not scale to fleet sizes): use -believe oracle|static|simultaneous and -conns single|uniform")
	}
	if needsModel {
		var model *predict.Model
		if *modelIn != "" {
			var err error
			model, err = predict.LoadFile(*modelIn)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("loaded prediction model from %s (%d trees)\n", *modelIn, model.Forest().NumTrees())
		} else {
			fmt.Println("training the offline prediction model (quick configuration)...")
			var rep wanify.TrainReport
			var err error
			model, rep, err = wanify.QuickModel(*seed)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("model ready: %d rows, %.1f%% train accuracy\n", rep.Rows, rep.TrainAccuracy*100)
		}
		fw, err = wanify.New(wanify.Config{
			Cluster: sim, Rates: rates, Seed: *seed,
			Agent:   agent.Config{Throttle: true},
			Runtime: rgauge.Config{Hardened: *harden},
		}, model)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Believed bandwidth matrix for WAN-aware schedulers.
	var believed bwmatrix.Matrix
	if *sched != "locality" {
		switch *believe {
		case "static":
			believed, _ = measure.StaticIndependent(sim, measure.Options{DurationS: 8, Conns: 1})
		case "simultaneous":
			believed, _ = measure.StaticSimultaneous(sim, measure.StableOptions())
		case "predicted":
			believed, _ = fw.DetermineRuntimeBW()
		case "oracle":
			ns, ok := sim.(*netsim.Sim)
			if !ok {
				log.Fatal("-believe oracle reads the simulator's true caps and needs the netsim backend")
			}
			believed = bwmatrix.New(n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if i != j {
						believed[i][j] = ns.PerConnCapMbps(i, j)
					}
				}
			}
		default:
			log.Fatalf("unknown belief %q", *believe)
		}
	}

	// Connection policy (one per job with -jobs > 1 under wanify:
	// each job's agents hold that job's partition of the plan).
	var jobSet *spark.JobSet // assigned before Run; feeds bytes-remaining sharing
	var policy spark.ConnPolicy = spark.SingleConn{}
	policies := make([]spark.ConnPolicy, *jobs)
	switch *conns {
	case "single":
	case "uniform":
		policy = spark.UniformConn{K: 8}
	case "wanify":
		pred := believed
		if pred == nil {
			pred, _ = fw.DetermineRuntimeBW()
		}
		var ws []float64
		if *skew {
			ws = workloads.SkewWeights(input)
		}
		plan := fw.Optimize(pred, wanify.OptimizeOptions{SkewWeights: ws})
		if *jobs > 1 {
			prios := make([]float64, *jobs)
			for i := range prios {
				prios[i] = float64(*jobs - i)
			}
			if _, err := fw.DeployJobSetAgents(pred, plan, wanify.JobSetOptions{
				Jobs:       *jobs,
				Share:      share,
				Priorities: prios,
				Remaining: func() []float64 {
					if jobSet == nil {
						return nil
					}
					return jobSet.RemainingBytes()
				},
				Optimize: wanify.OptimizeOptions{SkewWeights: ws},
			}); err != nil {
				log.Fatal(err)
			}
			defer fw.StopAgents()
			copy(policies, fw.JobPolicies())
			if *rebal {
				fw.StartJobSetController()
			}
		} else {
			fw.DeployAgents(pred, plan)
			defer fw.StopAgents()
			policy = fw.ConnPolicy()
			if *rebal {
				fw.StartController(wanify.OptimizeOptions{SkewWeights: ws})
			}
		}
	default:
		log.Fatalf("unknown conns %q", *conns)
	}
	for i := range policies {
		if policies[i] == nil {
			policies[i] = policy
		}
	}

	// Scheduler (validated up front; this construction cannot fail).
	info := gda.NewClusterInfo(sim, rates)
	scheduler, err := schedFor(*sched, believed, info)
	if err != nil {
		log.Fatal(err)
	}

	if *jobs > 1 {
		fmt.Printf("\nrunning %d x %s concurrently on %d DCs (%s): scheduler=%s conns=%s share=%s\n",
			*jobs, job.Name, n, be, scheduler.Name(), *conns, share)
	} else {
		fmt.Printf("\nrunning %s on %d DCs (%s): scheduler=%s conns=%s\n", job.Name, n, be, scheduler.Name(), *conns)
	}
	eng := spark.NewEngine(sim, rates)
	eng.OverlapFetchCompute = *overlap
	if *recover {
		eng.Recovery = spark.RecoveryConfig{Enabled: true}
	}
	var rec *trace.Recorder
	if *traceTo != "" {
		rec = trace.NewRecorder(sim, 1.0)
	}

	var results []spark.RunResult
	var makespan float64
	if *jobs > 1 {
		runs := make([]spark.JobRun, *jobs)
		for i := range runs {
			runs[i] = spark.JobRun{Job: job, Sched: scheduler, Policy: policies[i]}
		}
		var err error
		jobSet, err = spark.NewJobSet(eng, runs)
		if err != nil {
			log.Fatal(err)
		}
		set, err := jobSet.Run()
		if err != nil {
			log.Fatal(err)
		}
		results, makespan = set.Results, set.MakespanS
	} else {
		res, err := eng.RunJob(job, scheduler, policy)
		if err != nil {
			log.Fatal(err)
		}
		results, makespan = []spark.RunResult{res}, res.JCTSeconds
	}
	if rec != nil {
		rec.Close()
		f, err := os.Create(*traceTo)
		if err != nil {
			log.Fatalf("create trace file: %v", err)
		}
		if err := rec.WriteCSV(f, true); err != nil {
			log.Fatalf("write trace: %v", err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("close trace: %v", err)
		}
		fmt.Printf("rate trace (%d samples) written to %s\n", rec.Len(), *traceTo)
	}

	for i, res := range results {
		if len(results) > 1 {
			fmt.Printf("\n--- job %d ---\n", i)
		}
		fmt.Printf("\n%-14s%12s%12s%14s%14s\n", "stage", "transfer(s)", "compute(s)", "WAN bytes", "placement")
		for _, st := range res.Stages {
			fmt.Printf("%-14s%12.1f%12.1f%14.3g  %s\n",
				st.Name, st.TransferS, st.ComputeS, st.WANBytes, placementString(st.Placement))
		}
		fmt.Printf("\nJCT: %.1f s (%.1f min)\n", res.JCTSeconds, res.JCTSeconds/60)
		fmt.Printf("min observed pair BW: %.0f Mbps\n", res.MinShuffleMbps)
		fmt.Printf("WAN bytes total: %.2f GB\n", res.WANBytes/1e9)
		fmt.Printf("cost: $%.3f (compute $%.3f + network $%.3f + storage $%.4f)\n",
			res.Cost.Total(), res.Cost.ComputeUSD, res.Cost.NetworkUSD, res.Cost.StorageUSD)
		fmt.Printf("energy: %.2f kWh, %.3f kgCO2e (compute %.2f kWh + network %.2f kWh)\n",
			res.Energy.KWh(), res.Energy.KgCO2(), res.Energy.ComputeKWh, res.Energy.NetworkKWh)
		if res.LostBytes > 0 || res.Recoveries > 0 {
			fmt.Printf("fault recovery: %.2f GB lost, %.2f GB re-routed over %d waves (%.1f s recompute)\n",
				res.LostBytes/1e9, res.RecoveredBytes/1e9, res.Recoveries, res.RecomputeS)
		}
	}
	if fw != nil {
		if ctl := fw.Controller(); ctl != nil {
			fmt.Printf("\nre-gauging: %d replans over %d drift epochs (probe traffic %.1f MB)\n",
				ctl.Replans(), ctl.DriftEpochs(), ctl.TotalCost().BytesTransferred/1e6)
			for _, ev := range ctl.Events() {
				fmt.Printf("  replan %s\n", ev)
			}
			if g := ctl.Gauge(); g.Hardened {
				fmt.Printf("  gauge: coverage %.0f%%, %d rejected snapshots, %d probe retries, %d unmeasurable pairs, %d belief-filled\n",
					g.LastCoverage*100, g.RejectedSnapshots, g.Retries, g.UnmeasurablePairs, g.FusedPairs)
				for _, in := range ctl.Incidents() {
					fmt.Printf("  incident %s\n", in)
				}
			}
		}
	}
	if len(results) > 1 {
		fmt.Printf("\nmakespan: %.1f s (%.1f min)\n", makespan, makespan/60)
	}
}

// schedUsage is derived from the scorer registry so the flag help, the
// up-front validation error, and the blend: parser can never drift
// apart: registering a scorer in internal/gda surfaces it here.
var schedUsage = "locality | iridium | tetrium | kimchi | " +
	strings.Join(gda.ScorerNames(), " | ") +
	" | blend:jct=W,cost=W,carbon=W"

// schedFor resolves a -sched spec to a scheduler. The classic
// composed schedulers keep their names; everything else goes through
// the scorer registry (bare scorer names and blend: specs).
func schedFor(spec string, believed bwmatrix.Matrix, info gda.ClusterInfo) (spark.Scheduler, error) {
	switch spec {
	case "locality":
		return gda.Locality{}, nil
	case "iridium":
		return gda.Iridium{Believed: believed, Info: info}, nil
	case "tetrium":
		return gda.Tetrium{Believed: believed, Info: info}, nil
	case "kimchi":
		return gda.Kimchi{Believed: believed, Info: info}, nil
	}
	sc, err := gda.ParseScorer(spec)
	if err != nil {
		return nil, fmt.Errorf("unknown scheduler %q (want %s): %v", spec, schedUsage, err)
	}
	return gda.Sched{Scorer: sc, Believed: believed, Info: info}, nil
}

func sumOf(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func placementString(p spark.Placement) string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%.2f", v)
	}
	b.WriteByte(']')
	return b.String()
}
