// Command wanify-serve runs the WANify control plane as a long-lived
// HTTP service: a simulated WAN cluster, one framework in dynamic
// multi-job mode, and a Plane admitting jobs through a bounded queue
// with per-tenant quotas (see internal/serve and DESIGN.md §9).
//
//	wanify-serve -addr :8080
//	wanify-serve -dcs 4 -max-running 2 -queue 16 -quota 4
//	wanify-serve -refresh 300 -graphite localhost:2003 -speed 120
//	wanify-serve -hardened
//
// -hardened upgrades the re-gauging controller to failure-aware
// gauging: probes retry with backoff, partial snapshots fuse with the
// last-known-good belief, low-coverage snapshots are refused (degraded
// mode) and repeated refusals open a circuit breaker. The state shows
// in /healthz ("degraded" body, still 200), the gauge section of
// /v1/cluster, and the wanify.serve.gauge.* telemetry family.
//
// The substrate clock free-wheels at -speed simulated seconds per wall
// second on a dedicated driver goroutine; every request crosses onto
// that timeline, so the service stays deterministic per seed under any
// request interleaving that arrives at the same simulated instants.
//
// API (JSON; see internal/serve/http.go):
//
//	POST   /v1/jobs       submit  {"workload":"terasort","input_gb":100}
//	GET    /v1/jobs       list jobs
//	GET    /v1/jobs/{id}  job status
//	DELETE /v1/jobs/{id}  cancel
//	GET    /v1/cluster    cluster snapshot
//	GET    /metrics       Graphite plaintext telemetry buffer
//	GET    /healthz       liveness
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"

	wanify "github.com/wanify/wanify"
	"github.com/wanify/wanify/internal/agent"
	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/geo"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/optimize"
	"github.com/wanify/wanify/internal/predict"
	rgauge "github.com/wanify/wanify/internal/runtime"
	"github.com/wanify/wanify/internal/serve"
	"github.com/wanify/wanify/internal/spark"
	"github.com/wanify/wanify/internal/substrate"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		dcs        = flag.Int("dcs", 8, "data centers (testbed subset, 2-8)")
		maxRunning = flag.Int("max-running", 4, "concurrent job slots")
		queueCap   = flag.Int("queue", 64, "admission queue capacity")
		quota      = flag.Int("quota", 0, "per-tenant cap on queued+running jobs (0 = off)")
		shareS     = flag.String("share", "fair", "WAN sharing across running jobs: fair | priority")
		epochS     = flag.Float64("epoch", 15, "telemetry epoch (simulated s)")
		refreshS   = flag.Float64("refresh", 0, "model re-fingerprint period (simulated s, 0 = off)")
		quant      = flag.Float64("quant", 0, "fingerprint bandwidth bucket in Mbps (0 = serving default)")
		rebal      = flag.Bool("rebalance", true, "run the mid-job re-gauging controller")
		harden     = flag.Bool("hardened", false, "with -rebalance: failure-aware gauging — probe retry/backoff, belief-fused partial snapshots, coverage-gated replans and a circuit breaker; surfaces in /healthz (degraded), /v1/cluster (gauge) and wanify.serve.gauge.* telemetry")
		speed      = flag.Float64("speed", 60, "simulated seconds per wall second (<=0 free-runs)")
		graphite   = flag.String("graphite", "", "also stream telemetry to this carbon host:port")
		metricsCap = flag.Int("metrics-cap", 4096, "telemetry lines retained for /metrics")
	)
	flag.Parse()

	share := optimize.ShareFair
	switch *shareS {
	case "fair":
	case "priority":
		share = optimize.SharePriority
	default:
		log.Fatalf("wanify-serve: unknown -share %q (want fair or priority)", *shareS)
	}
	if *dcs < 2 || *dcs > 8 {
		log.Fatalf("wanify-serve: -dcs %d out of range [2,8]", *dcs)
	}

	rates := cost.DefaultRates()
	sim := netsim.NewSim(netsim.UniformCluster(geo.TestbedSubset(*dcs), substrate.T2Medium, *seed))

	log.Printf("training boot model (seed %d)...", *seed)
	model, rep, err := wanify.QuickModel(*seed)
	if err != nil {
		log.Fatalf("wanify-serve: training boot model: %v", err)
	}
	log.Printf("boot model ready: test accuracy %.1f%%", rep.TestAccuracy*100)

	cfg := wanify.Config{
		Cluster: sim, Rates: rates, Seed: *seed,
		Agent: agent.Config{Throttle: true},
	}
	if *harden && !*rebal {
		log.Fatal("wanify-serve: -hardened configures the re-gauging controller and requires -rebalance")
	}
	if *rebal {
		cfg.Runtime = rgauge.Config{
			Enabled: true, EpochS: 15, HysteresisEpochs: 2, CooldownS: 30,
			Hardened: *harden,
		}
	}
	fw, err := wanify.New(cfg, model)
	if err != nil {
		log.Fatalf("wanify-serve: framework: %v", err)
	}
	sim.RunUntil(60) // warm the substrate before gauging

	metrics := &serve.MemorySink{Cap: *metricsCap}
	var sink serve.Sink = metrics
	if *graphite != "" {
		carbon := &serve.TCPSink{Addr: *graphite}
		defer carbon.Close()
		sink = serve.MultiSink(metrics, carbon)
	}

	plane, err := serve.New(fw, spark.NewEngine(sim, rates), serve.Config{
		Rates:       rates,
		Seed:        *seed,
		MaxRunning:  *maxRunning,
		QueueCap:    *queueCap,
		TenantQuota: *quota,
		Share:       share,
		EpochS:      *epochS,
		RefreshS:    *refreshS,
		QuantMbps:   *quant,
		Train: func(fp uint64) (*predict.Model, error) {
			// Deterministic per fingerprint: the regime's identity seeds
			// the forest, so a cache miss always rebuilds the same model.
			ds, _ := dataset.Generate(dataset.GenConfig{
				Sizes: []int{3, 5, 8}, DrawsPerSize: 4, Seed: *seed ^ fp,
			})
			return predict.Train(ds, predict.TrainConfig{
				Forest: rf.Config{NumTrees: 40, Seed: *seed ^ fp},
			})
		},
		Sink: sink,
	})
	if err != nil {
		log.Fatalf("wanify-serve: plane: %v", err)
	}
	if err := plane.Start(); err != nil {
		log.Fatalf("wanify-serve: start: %v", err)
	}

	driver := serve.NewDriver(plane)
	driver.Speed = *speed
	go driver.Run()

	server := &http.Server{Addr: *addr, Handler: serve.NewServer(plane, driver, metrics)}
	go func() {
		log.Printf("wanify-serve: listening on %s (%d DCs, %d slots, clock %gx)",
			*addr, *dcs, *maxRunning, *speed)
		if err := server.ListenAndServe(); err != http.ErrServerClosed {
			log.Fatalf("wanify-serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	<-stop
	fmt.Fprintln(os.Stderr)
	log.Printf("wanify-serve: shutting down")
	server.Close()
	driver.Do(plane.Close)
	driver.Close()
}
