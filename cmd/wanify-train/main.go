// Command wanify-train runs WANify's offline module (§4.1.1): the
// Bandwidth Analyzer collects labeled monitoring sessions on the
// simulated testbed, and the WAN Prediction Model (Random Forest) is
// trained and evaluated.
//
//	wanify-train                         # paper-like configuration
//	wanify-train -sessions 40 -trees 100 # heavier training run
//	wanify-train -workers -1             # parallel tree training (DESIGN.md §6)
//	wanify-train -out model.gob          # persist the trained model
//	wanify-train -load model.gob         # evaluate a saved model
//
// Models written with -out are reloaded by wanify-sim/wanify-bench
// via their -model flags, so online runs skip retraining — the paper's
// deployment shape, where the offline module trains once and the
// online module only predicts.
//
// The tool prints dataset statistics, train/test accuracy at the paper's
// 100 Mbps significance threshold (the metric behind its "98.51%
// training accuracy"), RMSE/R², per-feature importance (Table 3), and
// the priced collection effort.
package main

import (
	"flag"
	"fmt"
	"log"

	"github.com/wanify/wanify/internal/cost"
	"github.com/wanify/wanify/internal/ml/dataset"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/predict"
	"github.com/wanify/wanify/internal/simrand"
	"github.com/wanify/wanify/internal/stats"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 1, "simulation seed")
		sessions = flag.Int("sessions", 15, "monitoring sessions per cluster size")
		trees    = flag.Int("trees", 100, "Random Forest estimators (paper: 100)")
		workers  = flag.Int("workers", 0, "parallel tree-training workers (-1 = GOMAXPROCS; 0 keeps the legacy sequential RNG scheme, bit-compatible with earlier models)")
		outPath  = flag.String("out", "", "write the trained model to this file (gob)")
		loadPath = flag.String("load", "", "evaluate an existing model instead of training")
	)
	flag.Parse()

	gen := dataset.GenConfig{
		Sizes:        []int{2, 3, 4, 5, 6, 7, 8},
		DrawsPerSize: *sessions,
		Seed:         *seed,
	}
	fmt.Printf("collecting %d sessions per size over cluster sizes %v...\n", gen.DrawsPerSize, gen.Sizes)
	ds, rep := dataset.Generate(gen)
	fmt.Printf("dataset: %d labeled pairs, label SD %.0f Mbps (paper: ~184)\n",
		ds.Len(), stats.StdDev(ds.Y))
	fmt.Printf("collection effort: %.0f s simulated, %.1f GB probe traffic, %.0f VM-seconds\n",
		rep.ElapsedS, rep.BytesTransferred/1e9, rep.VMSeconds)
	// Price the collection like Table 2 does.
	meanMbps := rep.BytesTransferred * 8 / 1e6 / rep.ElapsedS / 8 // per instance, 8-DC worst case
	collectUSD := cost.TrainingCostUSD(cost.TrainingParams{
		Rows: ds.Len(), N: 8, SessionS: 21, SessionMbps: meanMbps,
		Spec: cost.DefaultTrainingParams(8).Spec, NetPerGB: 0.02,
	})
	fmt.Printf("collection cost at Table 2 pricing: ~$%.0f (paper spent ~$150 total)\n\n", collectUSD)

	splitRng := simrand.Derive(*seed, "train-test-split")
	train, test := ds.Split(0.2, splitRng)

	var model *predict.Model
	if *loadPath != "" {
		var err error
		model, err = predict.LoadFile(*loadPath)
		if err != nil {
			log.Fatalf("load model: %v", err)
		}
		forest := model.Forest()
		fmt.Printf("loaded model: %d trees, %d features\n", forest.NumTrees(), forest.NumFeatures())
	} else {
		var err error
		model, err = predict.Train(train, predict.TrainConfig{
			Forest: rf.Config{NumTrees: *trees, Seed: *seed, Workers: *workers},
		})
		if err != nil {
			log.Fatalf("train: %v", err)
		}
		fmt.Printf("trained Random Forest: %d trees, OOB RMSE %.1f Mbps\n",
			model.Forest().NumTrees(), model.Forest().OOBRMSE())
	}

	trainAcc, trainRMSE, _ := model.Accuracy(train)
	testAcc, testRMSE, testR2 := model.Accuracy(test)
	fmt.Printf("train: accuracy %.2f%% (paper: 98.51%%), RMSE %.1f Mbps\n", trainAcc*100, trainRMSE)
	fmt.Printf("test:  accuracy %.2f%%, RMSE %.1f Mbps, R² %.3f\n", testAcc*100, testRMSE, testR2)

	fmt.Println("\nfeature importance (Table 3):")
	for i, imp := range model.Forest().FeatureImportance() {
		fmt.Printf("  %-8s %.3f\n", dataset.FeatureNames[i], imp)
	}

	if *outPath != "" {
		if err := model.SaveFile(*outPath); err != nil {
			log.Fatalf("save: %v", err)
		}
		fmt.Printf("\nmodel written to %s (reuse with wanify-sim/wanify-bench -model)\n", *outPath)
	}
}
