// Command wanify-bench regenerates the paper's tables and figures from
// the simulated testbed. Each experiment id corresponds to one paper
// artifact (see DESIGN.md §3):
//
//	wanify-bench -list
//	wanify-bench -run table1
//	wanify-bench -run all -scale 0.2 -seed 7 -parallel 8
//
// Independent experiment drivers run concurrently across a worker pool
// (each owns its private simulator; the trained prediction model is
// shared read-only), so wall-clock is bounded by the slowest driver.
// Output order is deterministic and identical to a sequential run.
//
// Unless -bench-out is empty, a machine-readable timing report is
// written (default BENCH_netsim.json) with per-experiment wall-clock
// seconds, so the simulator's performance trajectory can be tracked
// across commits.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/wanify/wanify/internal/experiments"
)

// benchReport is the schema of BENCH_netsim.json. Per-experiment
// seconds are wall-clock under `workers`-way co-scheduling: when
// comparing timings across commits, use runs with the same worker
// count — the committed baseline is generated with -parallel 1 so
// entries are uncontended.
type benchReport struct {
	GoVersion    string       `json:"go_version"`
	GOMAXPROCS   int          `json:"gomaxprocs"`
	Workers      int          `json:"workers"`
	Scale        float64      `json:"scale"`
	Seeds        []uint64     `json:"seeds"`
	TotalSeconds float64      `json:"total_seconds"`
	Experiments  []benchEntry `json:"experiments"`
}

type benchEntry struct {
	ID      string  `json:"id"`
	Seed    uint64  `json:"seed"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

func main() {
	var (
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		seeds    = flag.Int("seeds", 1, "repeat over this many consecutive seeds (the paper averages 5 runs)")
		scale    = flag.Float64("scale", 1.0, "input-size scale (1.0 = paper scale)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "experiment drivers to run concurrently (1 = sequential, <=0 = GOMAXPROCS)")
		benchOut = flag.String("bench-out", "BENCH_netsim.json", "write a JSON timing report here ('' to disable)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *run == "" {
			fmt.Println("\nusage: wanify-bench -run <id>|all [-seed N] [-scale F] [-parallel N]")
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	} else if _, ok := experiments.Registry[*run]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
		os.Exit(2)
	}
	if *seeds < 1 {
		*seeds = 1
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      *scale,
	}
	failed := 0
	for k := 0; k < *seeds; k++ {
		params := experiments.Params{Seed: *seed + uint64(k), Scale: *scale}
		report.Seeds = append(report.Seeds, params.Seed)
		runs := experiments.RunConcurrent(ids, params, workers)
		for _, r := range runs {
			entry := benchEntry{ID: r.ID, Seed: r.Seed, Seconds: r.Seconds}
			if r.Err != nil {
				entry.Error = r.Err.Error()
				fmt.Fprintf(os.Stderr, "%s (seed %d): %v\n", r.ID, r.Seed, r.Err)
				failed++
			} else {
				label := r.ID
				if *seeds > 1 {
					label = fmt.Sprintf("%s seed=%d", r.ID, r.Seed)
				}
				fmt.Printf("=== %s (%.1fs wall) ===\n%s\n", label, r.Seconds, r.Result)
			}
			report.Experiments = append(report.Experiments, entry)
		}
	}
	report.TotalSeconds = time.Since(start).Seconds()

	if *benchOut != "" {
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *benchOut, err)
			failed++
		} else {
			fmt.Fprintf(os.Stderr, "timing report: %s (%.1fs total)\n", *benchOut, report.TotalSeconds)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
