// Command wanify-bench regenerates the paper's tables and figures from
// the simulated testbed. Each experiment id corresponds to one paper
// artifact (see DESIGN.md §3), and each id expands into a family of
// scenarios across the selected backends:
//
//	wanify-bench -list
//	wanify-bench -run table1
//	wanify-bench -run all -scale 0.2 -seed 7 -parallel 8
//	wanify-bench -run fig5 -backend trace:mytrace.csv  # 8+ region trace
//	wanify-bench -run all -model model.gob   # reuse a wanify-train model
//
// -backend is a comma-separated list of netsim | trace | trace:<name|file>
// (default "netsim,trace": the simulator plus the bundled diurnal
// replay, so the trace backend's timing trajectory is tracked from day
// one). Experiments pinned to bespoke netsim topologies are skipped on
// trace backends, as is every standard driver when a trace records
// fewer than the testbed's 8 regions (smaller traces still drive
// wanify-sim, which sizes the job to the backend).
//
// Independent scenario drivers run concurrently across a worker pool
// (each owns its private cluster; the trained prediction model is
// shared read-only), so wall-clock is bounded by the slowest driver.
// Output order is deterministic and identical to a sequential run.
//
// Unless -bench-out is empty, a machine-readable timing report is
// written (default BENCH_netsim.json) with per-scenario wall-clock
// seconds and the allocator-churn microbenchmark per backend, so the
// substrate's performance trajectory is tracked across commits (the CI
// bench guard compares against the committed baseline).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/wanify/wanify/internal/experiments"
	"github.com/wanify/wanify/internal/gda"
	"github.com/wanify/wanify/internal/ml/rf"
	"github.com/wanify/wanify/internal/netsim"
	"github.com/wanify/wanify/internal/predict"
)

// benchReport is the schema of BENCH_netsim.json. Per-scenario seconds
// are wall-clock under `workers`-way co-scheduling: when comparing
// timings across commits, use runs with the same worker count — the
// committed baseline is generated with -parallel 1 so entries are
// uncontended. Benchmarks holds the hot-path microbenchmarks, each as
// an optimized/reference pair whose ratio the CI guard gates on
// (ratios cancel raw hardware speed): allocator_churn_* (netsim
// incremental vs from-scratch, plus allocator_churn_<backend> per
// trace backend), scheduler_place_* (delta-evaluated vs reference
// scheduler search), rf_train_* (scratch-slab/parallel vs reference
// forest training — the optimized side uses rf.BenchWorkers() workers,
// so its absolute value depends on core count; the reference is always
// sequential) and rf_predict_batch_* (fan-out vs sequential batch
// prediction). The fleet_alloc_<n>dc_* keys are the scale-tiered
// allocator curves (-fleet-tiers): per-flow cost of a full sharded
// refill, the unsharded single-group baseline, the bottleneck-group
// count, and the worker-pool speedup at each fleet size.
type benchReport struct {
	GoVersion    string             `json:"go_version"`
	GOMAXPROCS   int                `json:"gomaxprocs"`
	Workers      int                `json:"workers"`
	Scale        float64            `json:"scale"`
	Backends     []string           `json:"backends"`
	Seeds        []uint64           `json:"seeds"`
	TotalSeconds float64            `json:"total_seconds"`
	Benchmarks   map[string]float64 `json:"benchmarks,omitempty"`
	Experiments  []benchEntry       `json:"experiments"`
}

type benchEntry struct {
	ID      string  `json:"id"`
	Seed    uint64  `json:"seed"`
	Seconds float64 `json:"seconds"`
	Error   string  `json:"error,omitempty"`
}

func main() {
	var (
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list experiment ids")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		seeds    = flag.Int("seeds", 1, "repeat over this many consecutive seeds (the paper averages 5 runs)")
		scale    = flag.Float64("scale", 1.0, "input-size scale (1.0 = paper scale)")
		backends = flag.String("backend", "netsim,trace", "comma-separated substrate backends: netsim | trace | trace:<name|file>")
		modelIn  = flag.String("model", "", "load a wanify-train model instead of training (gob)")
		parallel = flag.Int("parallel", runtime.GOMAXPROCS(0), "scenario drivers to run concurrently (1 = sequential, <=0 = GOMAXPROCS)")
		benchOut = flag.String("bench-out", "BENCH_netsim.json", "write a JSON timing report here ('' to disable)")
		tiers    = flag.String("fleet-tiers", "10,100,500", "comma-separated fleet DC counts for the scale-tiered allocator benchmark ('' to disable)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *run == "" {
			fmt.Println("\nusage: wanify-bench -run <id>|all [-seed N] [-scale F] [-backend LIST] [-parallel N]")
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	} else if _, ok := experiments.Registry[*run]; !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", *run)
		os.Exit(2)
	}
	if *seeds < 1 {
		*seeds = 1
	}

	var backendList []experiments.Backend
	for _, s := range strings.Split(*backends, ",") {
		b, err := experiments.ParseBackend(strings.TrimSpace(s))
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		backendList = append(backendList, b)
	}
	scenarios := experiments.Scenarios(ids, backendList)
	for _, b := range backendList {
		supported := 0
		for _, id := range ids {
			if experiments.SupportsBackend(id, b) {
				supported++
			}
		}
		if skipped := len(ids) - supported; skipped > 0 {
			fmt.Fprintf(os.Stderr, "backend %s: skipping %d/%d experiments (bespoke netsim topology, or trace has fewer than 8 regions)\n",
				b, skipped, len(ids))
		}
	}
	if len(scenarios) == 0 {
		fmt.Fprintf(os.Stderr, "no scenario supports the selected backends (%s)\n", *backends)
		os.Exit(2)
	}

	var model *predict.Model
	if *modelIn != "" {
		var err error
		model, err = predict.LoadFile(*modelIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "loaded prediction model from %s (%d trees); skipping training\n",
			*modelIn, model.Forest().NumTrees())
	}

	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	start := time.Now()
	report := benchReport{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workers:    workers,
		Scale:      *scale,
	}
	for _, b := range backendList {
		report.Backends = append(report.Backends, b.String())
	}
	failed := 0
	var admitNanos []int64 // serve control-plane admission latencies, across seeds
	for k := 0; k < *seeds; k++ {
		params := experiments.Params{Seed: *seed + uint64(k), Scale: *scale, Model: model}
		report.Seeds = append(report.Seeds, params.Seed)
		runs := experiments.RunScenarios(scenarios, params, workers)
		for _, r := range runs {
			entry := benchEntry{ID: r.ID, Seed: r.Seed, Seconds: r.Seconds}
			if sr, ok := r.Result.(experiments.ServeLoadResult); ok {
				admitNanos = append(admitNanos, sr.AdmitNanos...)
			}
			if r.Err != nil {
				entry.Error = r.Err.Error()
				fmt.Fprintf(os.Stderr, "%s (seed %d): %v\n", r.ID, r.Seed, r.Err)
				failed++
			} else {
				label := r.ID
				if *seeds > 1 {
					label = fmt.Sprintf("%s seed=%d", r.ID, r.Seed)
				}
				fmt.Printf("=== %s (%.1fs wall) ===\n%s\n", label, r.Seconds, r.Result)
			}
			report.Experiments = append(report.Experiments, entry)
		}
	}
	report.TotalSeconds = time.Since(start).Seconds()

	if *benchOut != "" {
		// Time the allocator hot path on every backend so the report
		// tracks each substrate's perf trajectory, not just netsim's.
		// The netsim pair (incremental + from-scratch reference) backs
		// the CI regression guard's hardware-independent ratio check.
		// The planning-layer trio (scheduler search, RF training, RF
		// batch prediction) records each optimized path against its
		// kept-verbatim reference the same way — the guard gates on
		// each optimized/reference ratio.
		report.Benchmarks = map[string]float64{
			"allocator_churn_ns_per_op":            netsim.ChurnNsPerOp(true, 20000),
			"allocator_churn_reference_ns_per_op":  netsim.ChurnNsPerOp(false, 5000),
			"scheduler_place_ns_per_op":            gda.PlaceNsPerOp(true, 200),
			"scheduler_place_reference_ns_per_op":  gda.PlaceNsPerOp(false, 50),
			"rf_train_ns_per_op":                   rf.TrainNsPerOp(true, 10),
			"rf_train_reference_ns_per_op":         rf.TrainNsPerOp(false, 5),
			"rf_predict_batch_ns_per_op":           rf.PredictBatchNsPerOp(true, 100),
			"rf_predict_batch_reference_ns_per_op": rf.PredictBatchNsPerOp(false, 100),
		}
		// One pooled/reference pair per descent objective: the scorer
		// refactor routes every objective through the same delta-
		// evaluated search, so each registered scorer (and the blend
		// composition) gets its own guarded ratio.
		for _, s := range []struct{ key, spec string }{
			{"scorer_jct", "jct"},
			{"scorer_cost", "cost"},
			{"scorer_carbon", "carbon"},
			{"scorer_blend", "blend:jct=0.34,cost=0.33,carbon=0.33"},
		} {
			report.Benchmarks[s.key+"_ns_per_op"] = gda.ScorerPlaceNsPerOp(s.spec, true, 200)
			report.Benchmarks[s.key+"_reference_ns_per_op"] = gda.ScorerPlaceNsPerOp(s.spec, false, 50)
		}
		// Control-plane admission→plan latency, from the serve driver's
		// >1000 scripted submissions (absent unless the serve experiment
		// ran). The CI guard gates the p50/allocator-churn ratio, which
		// cancels raw machine speed like every other guard pair.
		if len(admitNanos) > 0 {
			p50, p99 := experiments.ServeLoadResult{AdmitNanos: admitNanos}.AdmitPercentiles()
			report.Benchmarks["serve_admit_p50_ns"] = p50
			report.Benchmarks["serve_admit_p99_ns"] = p99
		}
		// Scale-tiered fleet curves: full-refill cost per flow as the
		// topology grows, against the unsharded single-group baseline.
		if *tiers != "" {
			for _, ts := range strings.Split(*tiers, ",") {
				dcs, err := strconv.Atoi(strings.TrimSpace(ts))
				if err != nil || dcs < 2 {
					fmt.Fprintf(os.Stderr, "bad -fleet-tiers entry %q (want DC counts like 10,100,500)\n", ts)
					os.Exit(2)
				}
				st := netsim.FleetAllocNsPerFlow(dcs, 200)
				key := fmt.Sprintf("fleet_alloc_%ddc", dcs)
				report.Benchmarks[key+"_ns_per_flow"] = st.NsPerFlow
				report.Benchmarks[key+"_unsharded_ns_per_flow"] = st.UnshardedNsPerFlow
				report.Benchmarks[key+"_groups"] = float64(st.Groups)
				report.Benchmarks[key+"_parallel_speedup"] = st.ParallelSpeedup()
			}
		}
		for _, b := range backendList {
			if b.String() == "netsim" {
				continue
			}
			ns, err := experiments.AllocatorChurnNsPerOp(b, 20000)
			if err != nil {
				fmt.Fprintf(os.Stderr, "churn benchmark on %s: %v\n", b, err)
				failed++
				continue
			}
			key := fmt.Sprintf("allocator_churn_%s_ns_per_op", strings.ReplaceAll(b.String(), ":", "_"))
			report.Benchmarks[key] = ns
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchOut, append(buf, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *benchOut, err)
			failed++
		} else {
			fmt.Fprintf(os.Stderr, "timing report: %s (%.1fs total)\n", *benchOut, report.TotalSeconds)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
