// Command wanify-bench regenerates the paper's tables and figures from
// the simulated testbed. Each experiment id corresponds to one paper
// artifact (see DESIGN.md §3):
//
//	wanify-bench -list
//	wanify-bench -run table1
//	wanify-bench -run all -scale 0.2 -seed 7
//
// Output is the same rows/series the paper reports, with the paper's
// numbers quoted inline for comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/wanify/wanify/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "", "experiment id to run, or 'all'")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Uint64("seed", 1, "simulation seed")
		seeds = flag.Int("seeds", 1, "repeat over this many consecutive seeds (the paper averages 5 runs)")
		scale = flag.Float64("scale", 1.0, "input-size scale (1.0 = paper scale)")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("experiments:")
		for _, id := range experiments.IDs() {
			fmt.Printf("  %s\n", id)
		}
		if *run == "" {
			fmt.Println("\nusage: wanify-bench -run <id>|all [-seed N] [-scale F]")
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = experiments.IDs()
	}
	if *seeds < 1 {
		*seeds = 1
	}
	failed := 0
	for _, id := range ids {
		runner, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
			os.Exit(2)
		}
		for k := 0; k < *seeds; k++ {
			params := experiments.Params{Seed: *seed + uint64(k), Scale: *scale}
			start := time.Now()
			res, err := runner(params)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s (seed %d): %v\n", id, params.Seed, err)
				failed++
				continue
			}
			label := id
			if *seeds > 1 {
				label = fmt.Sprintf("%s seed=%d", id, params.Seed)
			}
			fmt.Printf("=== %s (%.1fs wall) ===\n%s\n", label, time.Since(start).Seconds(), res)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
